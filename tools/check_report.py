#!/usr/bin/env python3
"""Validate canary report JSON files.

Several schemas are understood, dispatched on the report's `schema` tag:

canary.run_report/v2 — the machine-readable run reports emitted by the
benches, the experiment CLI and harness::make_report. Verifies the
presence and types of every section, that the breakdown's component maps
carry exactly the known critical-path components, and that the recovery
components sum to the recovery window within tolerance (1 sim-ms per
recovery, the acceptance bound of the decomposition).

canary.run_report/v3 — a v2 report plus the opt-in tail-attribution
sections: `tail` (exemplar-linked percentile attributions whose component
partition must sum to the representative's measured latency within 1
sim-ms whenever the causal chain is complete) and/or `timeseries`
(fixed-window rollups whose row counts must match the declared window
count). A v3 report must carry at least one of the two sections; a v2
report must carry neither.

canary.bench/v1 — the throughput reports emitted by bench/scale_stress:
named phases with events, wall time, events/sec and exact allocation
counts, plus peak RSS. With --baseline, each phase's events/sec is
compared against the same phase in the baseline report and the check
fails if any phase regressed by more than --max-regress (default 0.20,
i.e. 20%).

canary.chaos/v1 — the chaos-campaign verdicts emitted by
bench/chaos_campaign: scenario count, injected-fault totals, detector
outcomes, open-loop traffic totals and the invariant-oracle tally. The
check FAILS when the report records any oracle violation, so wiring
this file into CI makes a chaos regression a red build even if the
producing binary's exit status was lost along the way.

canary.traffic/v1 — the open-loop traffic curves emitted by
bench/traffic_curves. Verifies the offered-load axis is strictly
increasing, goodput never exceeds offered load, tail latency dominates
the median, the per-point conservation identity
(offered == admitted + shed + queued_end) holds, nothing was shed below
0.75x capacity, and the report's own conservation verdict is clean.

canary.hedge/v1 — the hedged-request comparison emitted by
bench/fig09_hedging. Verifies the exactly-once race accounting
(hedges_fired == hedge_wins + hedges_cancelled, no open races, at most
one hedge per admitted request), that the hedged p99 is monotone
non-increasing versus the no-hedge baseline, that hedging costs less
than full request replication, and that the bench's own self-check
verdict is clean. With --baseline pointing at a committed hedge report
(bench/BENCH_hedge.baseline.json), the hedge strategy's p99_ms and
cost_usd are additionally gated against the baseline: either growing by
more than --max-regress fails the check.

canary.partition/v1 — the partition/zone-outage/fencing comparison
emitted by bench/fig13_partitions. Verifies the split-brain accounting
per configuration and strategy (every double-execution attempt by a
fenced zombie was rejected, zero commits reached the store), heal
convergence (every partition window that started also healed), that
domain-aware placement strictly reduced recovery time in at least one
configuration, and that the bench's own self-check verdict is clean.
With --baseline pointing at a committed partition report
(bench/BENCH_partition.baseline.json), each configuration's
domain-aware recovery_s and makespan_s are gated against the baseline:
growing by more than --max-regress fails the check.

canary.realexec/v1 — the real-vs-simulated recovery comparison emitted
by bench/realexec_validate. Each scenario ran a miniature kernel as a
forked worker process, SIGKILLed it mid-execution and recovered it for
real, then replayed the same scenario on the simulator configured from
the measured step time / checkpoint size / kill offset. The validator
verifies every scenario completed with at least one real kill and
recovery, that the exactly-once counters are clean (no unfenced stale
commits, no duplicates), that each substrate's components sum to its
recovery window, and that the bench recorded no oracle violation.

With --calibrate BASELINE.json (a canary.realexec.baseline/v1 tolerance
file), each scenario's real/sim ratio per component is additionally
gated against the committed band: a component passes if its ratio lies
inside [min_ratio, max_ratio] or the absolute real-sim gap is below the
band's floor_s (absolute floors keep microsecond-scale components from
tripping ratio checks). Any component outside its band fails the check
— the simulator's recovery model has drifted from the real substrate.

Usage:  check_report.py [--baseline BASE.json] [--max-regress 0.20] \
            [--calibrate BAND.json] report.json [report2.json ...]

Exits non-zero on the first invalid report. Stdlib only.
"""

import json
import sys

SCHEMA = "canary.run_report/v2"
SCHEMA_V3 = "canary.run_report/v3"
BENCH_SCHEMA = "canary.bench/v1"
CHAOS_SCHEMA = "canary.chaos/v1"
TRAFFIC_SCHEMA = "canary.traffic/v1"
HEDGE_SCHEMA = "canary.hedge/v1"
PARTITION_SCHEMA = "canary.partition/v1"
REALEXEC_SCHEMA = "canary.realexec/v1"
REALEXEC_BASELINE_SCHEMA = "canary.realexec.baseline/v1"
CHAOS_ORACLES = [
    "completion",
    "exactly_once",
    "no_corrupt_restore",
    "detection_bound",
    "ledger_balance",
    "no_stranded_failures",
    "conservation",
    "hedge_exactly_once",
    "no_split_brain",
    "heal_convergence",
]
COMPONENTS = [
    "detection",
    "scheduling",
    "launch",
    "init",
    "restore",
    "exec",
    "re_exec",
    "finalize",
]
# Components that only appear in open-loop (traffic-driven) or hedged
# runs; the writers omit them when zero so other reports stay
# byte-identical.
OPTIONAL_COMPONENTS = [
    "queueing",
    "hedging",
]


class Invalid(Exception):
    pass


def expect(cond, msg):
    if not cond:
        raise Invalid(msg)


def check_number(obj, key, path):
    expect(key in obj, f"{path}: missing '{key}'")
    expect(isinstance(obj[key], (int, float)) and not isinstance(obj[key], bool),
           f"{path}.{key}: expected a number, got {type(obj[key]).__name__}")


def check_components(obj, path):
    expect(isinstance(obj, dict), f"{path}: expected an object")
    keys = set(obj.keys())
    required = set(COMPONENTS)
    allowed = required | set(OPTIONAL_COMPONENTS)
    expect(required <= keys <= allowed,
           f"{path}: component keys {sorted(keys)} not between "
           f"{sorted(required)} and {sorted(allowed)}")
    for key in keys:
        check_number(obj, key, path)
    return sum(obj[key] for key in keys)


def check_health(obj, path):
    expect(isinstance(obj, dict), f"{path}: expected an object")
    check_number(obj, "recorded", path)
    check_number(obj, "dropped", path)
    expect(isinstance(obj.get("truncated"), bool),
           f"{path}.truncated: expected a bool")
    expect((obj["dropped"] > 0) == obj["truncated"],
           f"{path}: truncated flag inconsistent with dropped={obj['dropped']}")
    # Per-EventKind drop accounting is only present when something was
    # dropped, and must sum exactly to the total.
    by_kind = obj.get("dropped_by_kind")
    if by_kind is not None:
        expect(isinstance(by_kind, dict) and by_kind,
               f"{path}.dropped_by_kind: expected a non-empty object")
        expect(obj["dropped"] > 0,
               f"{path}.dropped_by_kind present with dropped=0")
        for kind, count in by_kind.items():
            expect(isinstance(count, int) and count > 0,
                   f"{path}.dropped_by_kind.{kind}: bad count")
        expect(sum(by_kind.values()) == obj["dropped"],
               f"{path}.dropped_by_kind sums to {sum(by_kind.values())}, "
               f"not dropped={obj['dropped']}")


def check_breakdown(breakdown):
    expect(isinstance(breakdown, dict), "breakdown: expected an object")

    recoveries = breakdown.get("recoveries")
    expect(isinstance(recoveries, dict), "breakdown.recoveries: missing")
    check_number(recoveries, "count", "breakdown.recoveries")
    check_number(recoveries, "window_s", "breakdown.recoveries")
    total = check_components(recoveries.get("components"),
                             "breakdown.recoveries.components")
    # Acceptance bound: the components partition the recovery windows.
    tolerance = 1e-3 * max(1, recoveries["count"])
    expect(abs(total - recoveries["window_s"]) <= tolerance,
           f"breakdown.recoveries: components sum {total:.6f} != "
           f"window_s {recoveries['window_s']:.6f} (tolerance {tolerance})")

    end_to_end = breakdown.get("end_to_end")
    expect(isinstance(end_to_end, dict), "breakdown.end_to_end: missing")
    check_components(end_to_end.get("components"),
                     "breakdown.end_to_end.components")

    per_function = breakdown.get("per_function")
    expect(isinstance(per_function, dict), "breakdown.per_function: missing")
    for family, fb in per_function.items():
        path = f"breakdown.per_function.{family}"
        expect(isinstance(fb, dict), f"{path}: expected an object")
        for key in ("functions", "recoveries", "window_s"):
            check_number(fb, key, path)
        check_components(fb.get("components"), f"{path}.components")

    slo = breakdown.get("slo")
    expect(isinstance(slo, dict), "breakdown.slo: missing")
    for key in ("targets", "violations", "violation_ratio"):
        check_number(slo, key, "breakdown.slo")
    expect(slo["violations"] <= slo["targets"],
           "breakdown.slo: more violations than targets")
    breaches = slo.get("breaches_by_component")
    expect(isinstance(breaches, dict),
           "breakdown.slo.breaches_by_component: missing")
    for component, count in breaches.items():
        expect(component in COMPONENTS + OPTIONAL_COMPONENTS,
               f"breakdown.slo.breaches_by_component: unknown '{component}'")
        expect(isinstance(count, int) and count >= 0,
               f"breakdown.slo.breaches_by_component.{component}: bad count")
    expect(sum(breaches.values()) == slo["violations"],
           "breakdown.slo: breaches_by_component does not sum to violations")


def check_tail(tail, path="tail"):
    """Validate a v3 tail-attribution section."""
    expect(isinstance(tail, dict), f"{path}: expected an object")
    groups = tail.get("groups")
    expect(isinstance(groups, dict), f"{path}.groups: expected an object")
    attributions = 0
    for metric, group in groups.items():
        g = f"{path}.groups.{metric}"
        expect(isinstance(group, dict), f"{g}: expected an object")
        check_number(group, "exemplars", g)
        expect(group["exemplars"] >= 0, f"{g}.exemplars: negative")
        percentiles = group.get("percentiles")
        expect(isinstance(percentiles, list) and percentiles,
               f"{g}.percentiles: expected a non-empty array")
        prev_p = -1.0
        for i, a in enumerate(percentiles):
            p = f"{g}.percentiles[{i}]"
            expect(isinstance(a, dict), f"{p}: expected an object")
            for key in ("p", "samples", "bucket_estimate_s"):
                check_number(a, key, p)
            expect(0.0 <= a["p"] <= 100.0, f"{p}.p: out of [0, 100]")
            expect(a["p"] > prev_p, f"{p}.p: percentiles not increasing")
            prev_p = a["p"]
            if "latency_s" not in a:
                continue  # no exemplar survived retention for this target
            attributions += 1
            for key in ("latency_s", "trace", "function", "attributed_s",
                        "chain_events"):
                check_number(a, key, p)
            expect(isinstance(a.get("chain_complete"), bool),
                   f"{p}.chain_complete: expected a bool")
            check_components(a.get("components"), f"{p}.components")
            # Acceptance bound: when the causal chain resolved, the exact
            # component partition must sum to the representative's
            # measured latency within one simulated millisecond.
            if a["chain_complete"]:
                expect(abs(a["attributed_s"] - a["latency_s"]) <= 1e-3,
                       f"{p}: attributed {a['attributed_s']:.6f} s != "
                       f"latency {a['latency_s']:.6f} s (tolerance 1e-3)")
    return len(groups), attributions


def check_timeseries(ts, path="timeseries"):
    """Validate a v3 windowed-rollup section."""
    expect(isinstance(ts, dict), f"{path}: expected an object")
    check_number(ts, "window_s", path)
    expect(ts["window_s"] > 0, f"{path}.window_s: must be positive")
    check_number(ts, "windows", path)
    check_number(ts, "evicted", path)
    expect(ts["evicted"] >= 0, f"{path}.evicted: negative")
    windows = ts["windows"]

    counters = ts.get("counters")
    expect(isinstance(counters, dict), f"{path}.counters: expected an object")
    for name, rows in counters.items():
        p = f"{path}.counters.{name}"
        expect(isinstance(rows, list) and len(rows) == windows,
               f"{p}: expected {windows} rows, got "
               f"{len(rows) if isinstance(rows, list) else type(rows)}")
        prev_t = -1.0
        for row in rows:
            expect(isinstance(row, list) and len(row) == 2,
                   f"{p}: rows must be [t_s, value] pairs")
            expect(row[0] > prev_t, f"{p}: window starts not increasing")
            prev_t = row[0]

    quantiles = ts.get("quantiles")
    expect(isinstance(quantiles, dict), f"{path}.quantiles: expected an object")
    for name, rows in quantiles.items():
        p = f"{path}.quantiles.{name}"
        expect(isinstance(rows, list) and len(rows) == windows,
               f"{p}: expected {windows} rows")
        for row in rows:
            expect(isinstance(row, list) and len(row) == 4,
                   f"{p}: rows must be [t_s, count, p50, p99]")
            if row[1] > 0:
                expect(row[3] >= row[2],
                       f"{p}: p99 {row[3]} < p50 {row[2]} at t={row[0]}")

    levels = ts.get("levels")
    expect(isinstance(levels, dict), f"{path}.levels: expected an object")
    for name, rows in levels.items():
        p = f"{path}.levels.{name}"
        expect(isinstance(rows, list), f"{p}: expected an array")
        expect(len(rows) <= windows, f"{p}: more rows than windows")
        for row in rows:
            expect(isinstance(row, list) and len(row) == 2,
                   f"{p}: rows must be [t_s, value] pairs")
    return len(counters) + len(quantiles) + len(levels)


def check_report(report, path):
    expect(isinstance(report, dict), "top level: expected an object")
    schema = report.get("schema")
    expect(schema in (SCHEMA, SCHEMA_V3),
           f"schema: expected '{SCHEMA}' or '{SCHEMA_V3}', got {schema!r}")
    expect(isinstance(report.get("name"), str) and report["name"],
           "name: expected a non-empty string")

    for section in ("params", "scalars"):
        expect(isinstance(report.get(section), dict),
               f"{section}: expected an object")

    metrics = report.get("metrics")
    expect(isinstance(metrics, dict), "metrics: expected an object")
    for sub in ("counters", "gauges", "histograms"):
        expect(isinstance(metrics.get(sub), dict),
               f"metrics.{sub}: expected an object")
    for name, hist in metrics["histograms"].items():
        for key in ("count", "mean", "min", "max", "p50", "p95", "p99"):
            check_number(hist, key, f"metrics.histograms.{name}")

    check_breakdown(report.get("breakdown"))

    obs = report.get("obs")
    expect(isinstance(obs, dict), "obs: expected an object")
    check_health(obs.get("spans"), "obs.spans")
    check_health(obs.get("events"), "obs.events")

    # Schema discipline: the attribution sections both require and imply
    # the v3 tag — a v2 report carrying them (or a v3 report without
    # either) means the writer's gating broke.
    tail_stats = None
    ts_streams = None
    if schema == SCHEMA_V3:
        expect("tail" in report or "timeseries" in report,
               "v3 report carries neither a tail nor a timeseries section")
        if "tail" in report:
            tail_stats = check_tail(report["tail"])
        if "timeseries" in report:
            ts_streams = check_timeseries(report["timeseries"])
    else:
        expect("tail" not in report and "timeseries" not in report,
               "v2 report carries attribution sections (should be v3)")

    series = report.get("series")
    expect(isinstance(series, list), "series: expected an array")
    for i, s in enumerate(series):
        expect(isinstance(s, dict) and isinstance(s.get("name"), str),
               f"series[{i}]: expected an object with a name")
        columns = s.get("columns")
        expect(isinstance(columns, list), f"series[{i}].columns: missing")
        for j, row in enumerate(s.get("rows", [])):
            expect(isinstance(row, list) and len(row) == len(columns),
                   f"series[{i}].rows[{j}]: width != {len(columns)} columns")

    claims = report.get("claims")
    expect(isinstance(claims, list), "claims: expected an array")
    for i, c in enumerate(claims):
        expect(isinstance(c, dict) and isinstance(c.get("claim"), str),
               f"claims[{i}]: expected an object with a claim")
        check_number(c, "measured", f"claims[{i}]")

    extra = ""
    if tail_stats is not None:
        extra += (f", tail: {tail_stats[0]} metric(s) / "
                  f"{tail_stats[1]} attribution(s)")
    if ts_streams is not None:
        extra += f", timeseries: {ts_streams} stream(s)"
    print(f"{path}: OK ({schema}, "
          f"{report['breakdown']['recoveries']['count']} recoveries, "
          f"{len(series)} series, {len(claims)} claims{extra})")


def check_bench_report(report, path):
    """Validate a canary.bench/v1 report; returns {phase name: events/sec}."""
    expect(isinstance(report, dict), "top level: expected an object")
    expect(report.get("schema") == BENCH_SCHEMA,
           f"schema: expected '{BENCH_SCHEMA}', got {report.get('schema')!r}")
    expect(isinstance(report.get("name"), str) and report["name"],
           "name: expected a non-empty string")
    expect(isinstance(report.get("quick"), bool), "quick: expected a bool")

    config = report.get("config")
    expect(isinstance(config, dict), "config: expected an object")
    for key in ("nodes", "invocations"):
        check_number(config, key, "config")
        expect(config[key] > 0, f"config.{key}: must be positive")

    phases = report.get("phases")
    expect(isinstance(phases, list) and phases,
           "phases: expected a non-empty array")
    rates = {}
    for i, phase in enumerate(phases):
        p = f"phases[{i}]"
        expect(isinstance(phase, dict) and isinstance(phase.get("name"), str),
               f"{p}: expected an object with a name")
        for key in ("events", "wall_s", "events_per_sec", "allocations",
                    "allocations_per_event"):
            check_number(phase, key, p)
        expect(phase["events"] > 0, f"{p}.events: must be positive")
        expect(phase["wall_s"] > 0, f"{p}.wall_s: must be positive")
        expect(phase["events_per_sec"] > 0,
               f"{p}.events_per_sec: must be positive")
        expect(phase["allocations"] >= 0, f"{p}.allocations: negative")
        measured_rate = phase["events"] / phase["wall_s"]
        expect(abs(measured_rate - phase["events_per_sec"])
               <= 0.01 * measured_rate,
               f"{p}.events_per_sec inconsistent with events/wall_s")
        expect(phase["name"] not in rates, f"{p}: duplicate phase name")
        rates[phase["name"]] = phase["events_per_sec"]

    check_number(report, "peak_rss_bytes", "top level")
    expect(report["peak_rss_bytes"] > 0, "peak_rss_bytes: must be positive")

    summary = ", ".join(
        f"{name} {rate / 1e6:.2f}M ev/s" for name, rate in rates.items())
    print(f"{path}: OK ({BENCH_SCHEMA}, {summary})")
    return rates


def check_chaos_report(report, path):
    """Validate a canary.chaos/v1 report; fail on any oracle violation."""
    expect(isinstance(report, dict), "top level: expected an object")
    expect(report.get("schema") == CHAOS_SCHEMA,
           f"schema: expected '{CHAOS_SCHEMA}', got {report.get('schema')!r}")
    expect(isinstance(report.get("name"), str) and report["name"],
           "name: expected a non-empty string")

    params = report.get("params")
    expect(isinstance(params, dict), "params: expected an object")
    expect(isinstance(params.get("quick"), bool), "params.quick: expected a bool")
    for key in ("scenarios", "base_seed", "traffic_scenarios",
                "traffic_base_seed", "hedge_scenarios", "hedge_base_seed",
                "sharded_scenarios", "sharded_base_seed",
                "partition_scenarios", "partition_base_seed"):
        check_number(params, key, "params")
    expect(params["scenarios"] > 0, "params.scenarios: must be positive")
    expect(params["traffic_scenarios"] >= 0,
           "params.traffic_scenarios: negative")
    expect(params["hedge_scenarios"] >= 0, "params.hedge_scenarios: negative")
    expect(params["sharded_scenarios"] >= 0,
           "params.sharded_scenarios: negative")
    expect(params["partition_scenarios"] >= 0,
           "params.partition_scenarios: negative")

    faults = report.get("fault_totals")
    expect(isinstance(faults, dict), "fault_totals: expected an object")
    for key in ("function_failures", "node_kills", "gray_windows",
                "heartbeats_dropped", "heartbeats_delayed",
                "store_entries_dropped", "store_entries_corrupted"):
        check_number(faults, key, "fault_totals")
        expect(faults[key] >= 0, f"fault_totals.{key}: negative")

    detection = report.get("detection")
    expect(isinstance(detection, dict), "detection: expected an object")
    for key in ("suspicions", "false_suspicions", "recovery_stalls",
                "max_latency_s"):
        check_number(detection, key, "detection")
        expect(detection[key] >= 0, f"detection.{key}: negative")
    expect(detection["false_suspicions"] <= detection["suspicions"],
           "detection: more false suspicions than suspicions")

    traffic = report.get("traffic_totals")
    expect(isinstance(traffic, dict), "traffic_totals: expected an object")
    for key in ("offered", "admitted", "shed", "completed"):
        check_number(traffic, key, "traffic_totals")
        expect(traffic[key] >= 0, f"traffic_totals.{key}: negative")
    # Campaign-level conservation: chaos traffic scenarios drain fully, so
    # every offered arrival ended admitted or shed.
    expect(traffic["offered"] == traffic["admitted"] + traffic["shed"],
           f"traffic_totals: offered {traffic['offered']} != admitted "
           f"{traffic['admitted']} + shed {traffic['shed']}")
    expect(traffic["completed"] <= traffic["admitted"],
           "traffic_totals: completed exceeds admitted")

    hedge = report.get("hedge_totals")
    expect(isinstance(hedge, dict), "hedge_totals: expected an object")
    for key in ("fired", "wins", "cancelled"):
        check_number(hedge, key, "hedge_totals")
        expect(hedge[key] >= 0, f"hedge_totals.{key}: negative")
    # Campaign-level exactly-once: every scenario runs to completion, so
    # no race may be left open — fired splits exactly into wins+cancelled.
    expect(hedge["fired"] == hedge["wins"] + hedge["cancelled"],
           f"hedge_totals: fired {hedge['fired']} != wins {hedge['wins']} "
           f"+ cancelled {hedge['cancelled']}")
    if params["hedge_scenarios"] > 0:
        expect(hedge["fired"] > 0,
               "hedge_totals: hedge scenarios ran but no hedge ever fired")

    partition = report.get("partition_totals")
    expect(isinstance(partition, dict), "partition_totals: expected an object")
    for key in ("partitions_started", "partitions_healed", "zone_outages",
                "heartbeats_partition_dropped", "stale_epoch_rejects",
                "quorum_blocked_puts", "zombie_commit_attempts",
                "zombie_commits_rejected"):
        check_number(partition, key, "partition_totals")
        expect(partition[key] >= 0, f"partition_totals.{key}: negative")
    # Campaign-level heal convergence and split-brain accounting: every
    # window healed, and every zombie commit attempt was rejected.
    expect(partition["partitions_healed"] == partition["partitions_started"],
           f"partition_totals: {partition['partitions_started']} partition(s) "
           f"started but {partition['partitions_healed']} healed")
    expect(partition["zombie_commit_attempts"] ==
           partition["zombie_commits_rejected"],
           f"partition_totals: {partition['zombie_commit_attempts']} zombie "
           f"attempt(s) != {partition['zombie_commits_rejected']} rejected — "
           f"a fenced commit reached the store")
    if params["partition_scenarios"] > 0:
        expect(partition["partitions_started"] > 0,
               "partition_totals: partition scenarios ran but no window "
               "ever started")
    # At the quick campaign size and above, the zone cuts reliably fence
    # minority-side writers mid-commit; zero rejects means the epoch gate
    # is not being exercised.
    if params["partition_scenarios"] >= 8:
        expect(partition["stale_epoch_rejects"] > 0,
               "partition_totals: no stale-epoch write was ever rejected")

    oracles = report.get("oracles")
    expect(isinstance(oracles, dict), "oracles: expected an object")
    checked = oracles.get("checked")
    expect(isinstance(checked, list), "oracles.checked: expected an array")
    expect(sorted(checked) == sorted(CHAOS_ORACLES),
           f"oracles.checked: {sorted(checked)} != {sorted(CHAOS_ORACLES)}")
    check_number(oracles, "violations", "oracles")

    failed = report.get("failed_scenarios")
    expect(isinstance(failed, list), "failed_scenarios: expected an array")
    listed = 0
    for i, entry in enumerate(failed):
        p = f"failed_scenarios[{i}]"
        expect(isinstance(entry, dict), f"{p}: expected an object")
        check_number(entry, "seed", p)
        violations = entry.get("violations")
        expect(isinstance(violations, list) and violations,
               f"{p}.violations: expected a non-empty array")
        for v in violations:
            expect(isinstance(v, str) and v, f"{p}.violations: bad entry")
        listed += len(violations)
    expect(listed == oracles["violations"],
           f"failed_scenarios list {listed} violations but oracles.violations "
           f"is {oracles['violations']}")

    # The verdict: any violation is a red build.
    expect(oracles["violations"] == 0,
           f"chaos campaign recorded {oracles['violations']} oracle "
           f"violation(s) across seeds "
           f"{[entry['seed'] for entry in failed]}")

    print(f"{path}: OK ({CHAOS_SCHEMA}, {params['scenarios']} + "
          f"{params['traffic_scenarios']:.0f} scenarios, "
          f"{faults['node_kills']:.0f} node kills, "
          f"{traffic['offered']:.0f} arrivals, 0 violations)")


def check_traffic_summary(obj, path, allow_backlog=False):
    """Validate one traffic summary block and its conservation identity."""
    expect(isinstance(obj, dict), f"{path}: expected an object")
    for key in ("offered", "admitted", "shed", "completed", "failed",
                "in_flight", "queued_end", "queue_peak", "p50_ms", "p99_ms",
                "queue_wait_p99_ms"):
        check_number(obj, key, path)
        expect(obj[key] >= 0, f"{path}.{key}: negative")
    expect(isinstance(obj.get("conservation_ok"), bool),
           f"{path}.conservation_ok: expected a bool")
    expect(obj["conservation_ok"], f"{path}: conservation_ok is false")
    expect(obj["offered"] == obj["admitted"] + obj["shed"] + obj["queued_end"],
           f"{path}: offered {obj['offered']} != admitted {obj['admitted']} "
           f"+ shed {obj['shed']} + queued_end {obj['queued_end']}")
    expect(obj["admitted"] ==
           obj["completed"] + obj["failed"] + obj["in_flight"],
           f"{path}: admitted {obj['admitted']} != completed "
           f"{obj['completed']} + failed {obj['failed']} + in_flight "
           f"{obj['in_flight']}")
    if not allow_backlog:
        expect(obj["in_flight"] == 0 and obj["queued_end"] == 0,
               f"{path}: run ended with backlog "
               f"(in_flight {obj['in_flight']}, queued {obj['queued_end']})")
    if obj["completed"] > 0:
        expect(obj["p99_ms"] >= obj["p50_ms"],
               f"{path}: p99 {obj['p99_ms']} < p50 {obj['p50_ms']}")


def check_traffic_report(report, path):
    """Validate a canary.traffic/v1 report from bench/traffic_curves."""
    expect(isinstance(report, dict), "top level: expected an object")
    expect(report.get("schema") == TRAFFIC_SCHEMA,
           f"schema: expected '{TRAFFIC_SCHEMA}', got {report.get('schema')!r}")
    expect(isinstance(report.get("name"), str) and report["name"],
           "name: expected a non-empty string")

    params = report.get("params")
    expect(isinstance(params, dict), "params: expected an object")
    expect(isinstance(params.get("quick"), bool), "params.quick: expected a bool")
    for key in ("horizon_s", "capacity_rps", "max_concurrent",
                "queue_capacity", "seed"):
        check_number(params, key, "params")
        expect(params[key] > 0, f"params.{key}: must be positive")

    curves = report.get("curves")
    expect(isinstance(curves, list) and curves,
           "curves: expected a non-empty array")
    prev_offered = -1.0
    for i, point in enumerate(curves):
        p = f"curves[{i}]"
        expect(isinstance(point, dict), f"{p}: expected an object")
        for key in ("load_factor", "offered_rps", "goodput_rps"):
            check_number(point, key, p)
        check_traffic_summary(point, p)
        # The offered-load axis must be strictly increasing: a shuffled or
        # duplicated sweep means the producing bench is broken.
        expect(point["offered_rps"] > prev_offered,
               f"{p}: offered_rps {point['offered_rps']} not strictly "
               f"greater than previous {prev_offered}")
        prev_offered = point["offered_rps"]
        expect(point["goodput_rps"] <= point["offered_rps"] + 1e-9,
               f"{p}: goodput {point['goodput_rps']} exceeds offered "
               f"{point['offered_rps']}")
        if point["load_factor"] <= 0.75:
            expect(point["shed"] == 0,
                   f"{p}: shed {point['shed']} arrival(s) at subcritical "
                   f"load {point['load_factor']}")

    burst = report.get("burst")
    expect(isinstance(burst, dict), "burst: expected an object")
    for key in ("without_autoscaler", "with_autoscaler"):
        check_traffic_summary(burst.get(key), f"burst.{key}")
    scaled = burst["with_autoscaler"]
    for key in ("scale_ups", "scale_ins", "containers_launched",
                "containers_retired"):
        check_number(scaled, key, "burst.with_autoscaler")
        expect(scaled[key] >= 0, f"burst.with_autoscaler.{key}: negative")
    expect(scaled["containers_retired"] <= scaled["containers_launched"],
           "burst.with_autoscaler: retired more containers than launched")

    check_traffic_summary(report.get("overload_failure"), "overload_failure")

    conservation = report.get("conservation")
    expect(isinstance(conservation, dict), "conservation: expected an object")
    expect(isinstance(conservation.get("ok"), bool),
           "conservation.ok: expected a bool")
    check_number(conservation, "violations", "conservation")
    expect(conservation["ok"] and conservation["violations"] == 0,
           f"traffic bench recorded {conservation['violations']} "
           f"conservation violation(s)")

    print(f"{path}: OK ({TRAFFIC_SCHEMA}, {len(curves)} load points, "
          f"peak goodput {max(pt['goodput_rps'] for pt in curves):.1f} rps, "
          f"0 violations)")


def check_hedge_strategy(obj, path):
    """Validate one strategy block of a canary.hedge/v1 report."""
    expect(isinstance(obj, dict), f"{path}: expected an object")
    expect(isinstance(obj.get("name"), str) and obj["name"],
           f"{path}.name: expected a non-empty string")
    for key in ("p50_ms", "p99_ms", "p999_ms", "cost_usd", "admitted",
                "completed", "shed", "hedges_fired", "hedge_wins",
                "hedges_cancelled", "hedges_denied", "open_races"):
        check_number(obj, key, path)
        expect(obj[key] >= 0, f"{path}.{key}: negative")
    expect(obj["p50_ms"] <= obj["p99_ms"] <= obj["p999_ms"],
           f"{path}: percentiles not monotone "
           f"(p50 {obj['p50_ms']}, p99 {obj['p99_ms']}, "
           f"p999 {obj['p999_ms']})")
    expect(obj["completed"] <= obj["admitted"],
           f"{path}: completed exceeds admitted")
    # Exactly-once race accounting: at most one hedge per admitted
    # request, and every fired hedge resolved (no open races after
    # completed runs).
    expect(obj["hedges_fired"] <= obj["admitted"],
           f"{path}: hedges_fired {obj['hedges_fired']} exceeds admitted "
           f"{obj['admitted']}")
    expect(obj["hedges_fired"] ==
           obj["hedge_wins"] + obj["hedges_cancelled"],
           f"{path}: hedges_fired {obj['hedges_fired']} != hedge_wins "
           f"{obj['hedge_wins']} + hedges_cancelled "
           f"{obj['hedges_cancelled']}")
    expect(obj["open_races"] == 0,
           f"{path}: {obj['open_races']} race(s) left open")


def check_hedge_report(report, path):
    """Validate a canary.hedge/v1 report from bench/fig09_hedging."""
    expect(isinstance(report, dict), "top level: expected an object")
    expect(report.get("schema") == HEDGE_SCHEMA,
           f"schema: expected '{HEDGE_SCHEMA}', got {report.get('schema')!r}")
    expect(isinstance(report.get("name"), str) and report["name"],
           "name: expected a non-empty string")

    params = report.get("params")
    expect(isinstance(params, dict), "params: expected an object")
    expect(isinstance(params.get("quick"), bool), "params.quick: expected a bool")
    for key in ("horizon_s", "repetitions", "nodes", "rate_hz",
                "hedge_percentile", "seed"):
        check_number(params, key, "params")
        expect(params[key] > 0, f"params.{key}: must be positive")

    baseline = report.get("baseline")
    check_hedge_strategy(baseline, "baseline")
    expect(baseline["hedges_fired"] == 0,
           "baseline: the no-hedge baseline fired hedges")

    strategies = report.get("strategies")
    expect(isinstance(strategies, list) and strategies,
           "strategies: expected a non-empty array")
    by_name = {}
    for i, s in enumerate(strategies):
        check_hedge_strategy(s, f"strategies[{i}]")
        expect(s["name"] not in by_name, f"strategies[{i}]: duplicate name")
        by_name[s["name"]] = s

    hedge = by_name.get("hedge")
    expect(hedge is not None, "strategies: no 'hedge' entry")
    expect(hedge["hedges_fired"] > 0, "hedge: no hedge ever fired")
    # The point of hedging: p99 monotone non-increasing vs the no-hedge
    # baseline on the same arrivals.
    expect(hedge["p99_ms"] <= baseline["p99_ms"],
           f"hedge p99 {hedge['p99_ms']} ms above no-hedge baseline p99 "
           f"{baseline['p99_ms']} ms")
    rr = by_name.get("rr")
    if rr is not None:
        expect(hedge["cost_usd"] < rr["cost_usd"],
               f"hedge cost {hedge['cost_usd']} not below full-replication "
               f"cost {rr['cost_usd']}")

    claims = report.get("claims")
    expect(isinstance(claims, dict), "claims: expected an object")
    for key in ("hedge_vs_retry_p99_reduction_pct",
                "hedge_vs_rr_cost_reduction_pct"):
        check_number(claims, key, "claims")

    checks = report.get("checks")
    expect(isinstance(checks, dict), "checks: expected an object")
    expect(isinstance(checks.get("ok"), bool), "checks.ok: expected a bool")
    check_number(checks, "violations", "checks")
    expect(checks["ok"] and checks["violations"] == 0,
           f"hedge bench recorded {checks['violations']} self-check "
           f"violation(s)")

    print(f"{path}: OK ({HEDGE_SCHEMA}, {len(strategies)} strategies, "
          f"{hedge['hedges_fired']:.0f} hedges / {hedge['hedge_wins']:.0f} "
          f"wins, p99 {hedge['p99_ms']:.0f} ms vs baseline "
          f"{baseline['p99_ms']:.0f} ms)")


def check_partition_strategy(obj, path):
    """Validate one strategy block of a canary.partition/v1 report."""
    expect(isinstance(obj, dict), f"{path}: expected an object")
    expect(obj.get("name") in ("domain_blind", "domain_aware"),
           f"{path}.name: expected domain_blind or domain_aware, "
           f"got {obj.get('name')!r}")
    for key in ("recovery_s", "makespan_s", "double_execution_attempts",
                "zombie_commits_rejected", "zombie_commits_committed",
                "stale_epoch_rejects", "quorum_blocked_puts",
                "partitions_started", "partitions_healed", "zone_outages"):
        check_number(obj, key, path)
        expect(obj[key] >= 0, f"{path}.{key}: negative")
    expect(obj.get("completed") is True, f"{path}: run did not complete")
    # Split-brain safety: every double-execution attempt by a fenced
    # zombie was rejected at the store's epoch gate.
    expect(obj["zombie_commits_committed"] == 0,
           f"{path}: {obj['zombie_commits_committed']} fenced commit(s) "
           f"reached the store")
    expect(obj["double_execution_attempts"] ==
           obj["zombie_commits_rejected"] + obj["zombie_commits_committed"],
           f"{path}: double_execution_attempts "
           f"{obj['double_execution_attempts']} != rejected "
           f"{obj['zombie_commits_rejected']} + committed "
           f"{obj['zombie_commits_committed']}")
    # Heal convergence: every window that started also healed.
    expect(obj["partitions_healed"] == obj["partitions_started"],
           f"{path}: {obj['partitions_started']} partition(s) started but "
           f"{obj['partitions_healed']} healed")


def check_partition_report(report, path):
    """Validate a canary.partition/v1 report from bench/fig13_partitions."""
    expect(isinstance(report, dict), "top level: expected an object")
    expect(report.get("schema") == PARTITION_SCHEMA,
           f"schema: expected '{PARTITION_SCHEMA}', "
           f"got {report.get('schema')!r}")
    expect(isinstance(report.get("name"), str) and report["name"],
           "name: expected a non-empty string")

    params = report.get("params")
    expect(isinstance(params, dict), "params: expected an object")
    expect(isinstance(params.get("quick"), bool), "params.quick: expected a bool")
    for key in ("nodes", "zones", "repetitions", "seed"):
        check_number(params, key, "params")
        expect(params[key] > 0, f"params.{key}: must be positive")
    check_number(params, "fault_zone", "params")

    configs = report.get("configurations")
    expect(isinstance(configs, list) and configs,
           "configurations: expected a non-empty array")
    attempts = 0
    for i, config in enumerate(configs):
        p = f"configurations[{i}]"
        expect(isinstance(config, dict) and isinstance(config.get("name"), str),
               f"{p}: expected an object with a name")
        strategies = config.get("strategies")
        expect(isinstance(strategies, list) and len(strategies) == 2,
               f"{p}.strategies: expected exactly two strategies")
        by_name = {}
        for j, s in enumerate(strategies):
            check_partition_strategy(s, f"{p}.strategies[{j}]")
            by_name[s["name"]] = s
            attempts += s["double_execution_attempts"]
        expect(set(by_name) == {"domain_blind", "domain_aware"},
               f"{p}.strategies: need one domain_blind and one domain_aware")
        check_number(config, "recovery_reduction_pct", p)

    claims = report.get("claims")
    expect(isinstance(claims, dict), "claims: expected an object")
    for key in ("aware_strictly_faster_configs", "max_recovery_reduction_pct",
                "double_execution_attempts", "zombie_commits_committed"):
        check_number(claims, key, "claims")
    # The point of the figure: fault-domain-aware placement strictly
    # reduces correlated-loss recovery time somewhere, and no fenced
    # commit ever landed.
    expect(claims["aware_strictly_faster_configs"] > 0,
           "claims: domain-aware placement never strictly reduced recovery")
    expect(claims["zombie_commits_committed"] == 0,
           f"claims: {claims['zombie_commits_committed']} fenced commit(s) "
           f"reached the store")
    expect(claims["double_execution_attempts"] > 0,
           "claims: no double-execution attempt ever fired")

    checks = report.get("checks")
    expect(isinstance(checks, dict), "checks: expected an object")
    expect(isinstance(checks.get("ok"), bool), "checks.ok: expected a bool")
    check_number(checks, "violations", "checks")
    expect(checks["ok"] and checks["violations"] == 0,
           f"partition bench recorded {checks['violations']} self-check "
           f"violation(s)")

    print(f"{path}: OK ({PARTITION_SCHEMA}, {len(configs)} configurations, "
          f"{claims['aware_strictly_faster_configs']:.0f} strictly faster, "
          f"{attempts:.0f} double-execution attempts, 0 committed)")


REALEXEC_COMPONENTS = [
    "detection_s",
    "scheduling_s",
    "launch_s",
    "init_s",
    "restore_s",
    "re_exec_s",
]


def check_realexec_block(obj, path):
    """Validate one substrate's component block; window must partition."""
    expect(isinstance(obj, dict), f"{path}: expected an object")
    check_number(obj, "window_s", path)
    total = 0.0
    for key in REALEXEC_COMPONENTS:
        check_number(obj, key, path)
        expect(obj[key] >= 0, f"{path}.{key}: negative")
        total += obj[key]
    expect(abs(total - obj["window_s"]) <= 2e-3,
           f"{path}: components sum {total:.6f} != window_s "
           f"{obj['window_s']:.6f} (tolerance 2e-3)")


def check_realexec_report(report, path):
    """Validate a canary.realexec/v1 report from bench/realexec_validate."""
    expect(isinstance(report, dict), "top level: expected an object")
    expect(report.get("schema") == REALEXEC_SCHEMA,
           f"schema: expected '{REALEXEC_SCHEMA}', "
           f"got {report.get('schema')!r}")
    expect(isinstance(report.get("name"), str) and report["name"],
           "name: expected a non-empty string")

    params = report.get("params")
    expect(isinstance(params, dict), "params: expected an object")
    expect(isinstance(params.get("quick"), bool), "params.quick: expected a bool")
    for key in ("heartbeat_interval_ms", "timeout_multiplier", "seed"):
        check_number(params, key, "params")
        expect(params[key] > 0, f"params.{key}: must be positive")

    scenarios = report.get("scenarios")
    expect(isinstance(scenarios, list) and scenarios,
           "scenarios: expected a non-empty array")
    kills = 0
    for i, s in enumerate(scenarios):
        p = f"scenarios[{i}]"
        expect(isinstance(s, dict), f"{p}: expected an object")
        for key in ("kernel", "policy"):
            expect(isinstance(s.get(key), str) and s[key],
                   f"{p}.{key}: expected a non-empty string")
        expect(s.get("completed") is True, f"{p}: scenario did not complete")
        for key in ("kills", "recoveries", "workers_spawned",
                    "commits_accepted", "commits_torn", "stale_epoch_rejects",
                    "duplicate_commits", "unfenced_stale_commits",
                    "checkpoint_bytes", "step_exec_ms", "kill_offset_ms"):
            check_number(s, key, p)
            expect(s[key] >= 0, f"{p}.{key}: negative")
        # Every scenario must have genuinely killed a live worker process
        # and measured a real recovery, or the comparison is vacuous.
        expect(s["kills"] >= 1, f"{p}: no real worker process was killed")
        expect(s["recoveries"] >= 1, f"{p}: no recovery was measured")
        expect(s["workers_spawned"] >= 2,
               f"{p}: a recovery implies at least two worker processes")
        # Exactly-once accounting on the real substrate.
        expect(s["unfenced_stale_commits"] == 0,
               f"{p}: {s['unfenced_stale_commits']} stale-lineage commit(s) "
               f"accepted past the fence")
        expect(s["duplicate_commits"] == 0,
               f"{p}: {s['duplicate_commits']} duplicate commit(s) accepted")
        kills += s["kills"]
        check_realexec_block(s.get("real"), f"{p}.real")
        check_realexec_block(s.get("sim"), f"{p}.sim")

    violations = report.get("violations")
    expect(isinstance(violations, list), "violations: expected an array")

    oracles = report.get("oracles")
    expect(isinstance(oracles, dict), "oracles: expected an object")
    for key in ("completion", "exactly_once", "no_corrupt_restore"):
        expect(oracles.get(key) is True, f"oracles.{key}: not true")
    expect(not violations,
           f"realexec bench recorded {len(violations)} oracle violation(s): "
           f"{violations}")

    print(f"{path}: OK ({REALEXEC_SCHEMA}, {len(scenarios)} scenarios, "
          f"{kills:.0f} real kills, 0 violations)")


def calibrate_realexec(report, bands, path):
    """Gate a realexec report's real/sim deltas against a tolerance file.

    For every scenario and every component (plus the whole window), the
    real/sim ratio must lie inside the band's [min_ratio, max_ratio], or
    the absolute gap must be below the band's floor_s. Bands come from
    the baseline's `tolerance` map, keyed by component name with a
    `default` fallback.
    """
    expect(bands.get("schema") == REALEXEC_BASELINE_SCHEMA,
           f"calibration baseline schema: expected "
           f"'{REALEXEC_BASELINE_SCHEMA}', got {bands.get('schema')!r}")
    tolerance = bands.get("tolerance")
    expect(isinstance(tolerance, dict) and "default" in tolerance,
           "calibration baseline: tolerance map with a 'default' band "
           "required")
    for name, band in tolerance.items():
        for key in ("min_ratio", "max_ratio", "floor_s"):
            check_number(band, key, f"tolerance.{name}")
        expect(band["min_ratio"] <= band["max_ratio"],
               f"tolerance.{name}: min_ratio above max_ratio")

    drifted = []
    checked = 0
    for s in report["scenarios"]:
        label = f"{s['kernel']}/{s['policy']}"
        for key in ["window_s"] + REALEXEC_COMPONENTS:
            band = tolerance.get(key.removesuffix("_s"),
                                 tolerance["default"])
            real = s["real"][key]
            sim = s["sim"][key]
            within_floor = abs(real - sim) <= band["floor_s"]
            ratio = real / sim if sim > 1e-9 else None
            within_band = (ratio is not None and
                           band["min_ratio"] <= ratio <= band["max_ratio"])
            checked += 1
            if not (within_floor or within_band):
                shown = f"{ratio:.2f}" if ratio is not None else "inf"
                drifted.append(
                    f"{label} {key}: real {real:.4f}s vs sim {sim:.4f}s "
                    f"(ratio {shown} outside [{band['min_ratio']}, "
                    f"{band['max_ratio']}], gap above floor "
                    f"{band['floor_s']}s)")
    if drifted:
        for line in drifted:
            print(f"{path}: CALIBRATION DRIFT: {line}", file=sys.stderr)
        raise Invalid(f"{len(drifted)} of {checked} component comparisons "
                      f"drifted outside the committed tolerance band")
    print(f"{path}: calibration OK ({checked} component comparisons inside "
          f"the tolerance band)")


def compare_partition(report, baseline, max_regress, path):
    """Gate a partition report's recovery numbers against a baseline.

    Each configuration's domain-aware recovery_s and makespan_s may not
    grow by more than max_regress versus the committed baseline (same
    bench, same quick mode).
    """
    def aware_by_config(rep, which):
        out = {}
        for config in rep.get("configurations", []):
            for s in config.get("strategies", []):
                if s.get("name") == "domain_aware":
                    out[config["name"]] = s
        expect(out, f"{which}: no domain_aware strategies to compare")
        return out

    ours = aware_by_config(report, path)
    base = aware_by_config(baseline, "baseline")
    for name, base_strategy in base.items():
        expect(name in ours, f"{path}: configuration '{name}' missing vs "
               f"baseline")
        for key in ("recovery_s", "makespan_s"):
            ceiling = base_strategy[key] * (1.0 + max_regress)
            value = ours[name][key]
            expect(value <= ceiling,
                   f"{path}: {name} domain_aware {key} regressed: "
                   f"{value:.3f} > {ceiling:.3f} (baseline "
                   f"{base_strategy[key]:.3f}, max regression "
                   f"{max_regress:.0%})")
            delta = ((value - base_strategy[key]) / base_strategy[key]
                     if base_strategy[key] else 0.0)
            print(f"{path}: {name} domain_aware {key}: {value:.3f} vs "
                  f"baseline {base_strategy[key]:.3f} ({delta:+.1%})")


def compare_hedge(report, baseline, max_regress, path):
    """Gate a hedge report's headline numbers against a committed baseline.

    The hedge strategy's p99_ms and cost_usd may not grow by more than
    max_regress versus the baseline report (same bench, same quick mode).
    """
    def strategy(rep, which):
        for s in rep.get("strategies", []):
            if s.get("name") == "hedge":
                return s
        raise Invalid(f"{which}: no 'hedge' strategy to compare")

    ours = strategy(report, path)
    base = strategy(baseline, "baseline")
    for key in ("p99_ms", "cost_usd"):
        ceiling = base[key] * (1.0 + max_regress)
        expect(ours[key] <= ceiling,
               f"{path}: hedge {key} regressed: {ours[key]:.3f} > "
               f"{ceiling:.3f} (baseline {base[key]:.3f}, "
               f"max regression {max_regress:.0%})")
        delta = ((ours[key] - base[key]) / base[key]) if base[key] else 0.0
        print(f"{path}: hedge {key}: {ours[key]:.3f} vs baseline "
              f"{base[key]:.3f} ({delta:+.1%})")


def compare_bench(rates, baseline_rates, max_regress, path):
    """Fail if any phase's events/sec regressed beyond max_regress."""
    for name, base_rate in baseline_rates.items():
        expect(name in rates, f"{path}: phase '{name}' missing vs baseline")
        floor = base_rate * (1.0 - max_regress)
        rate = rates[name]
        expect(rate >= floor,
               f"{path}: phase '{name}' regressed: {rate:.0f} ev/s < "
               f"{floor:.0f} ev/s (baseline {base_rate:.0f}, "
               f"max regression {max_regress:.0%})")
        delta = (rate - base_rate) / base_rate
        print(f"{path}: {name}: {rate / 1e6:.2f}M ev/s vs baseline "
              f"{base_rate / 1e6:.2f}M ({delta:+.1%})")


def load(path):
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def main(argv):
    baseline_path = None
    calibrate_path = None
    max_regress = 0.20
    paths = []
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--baseline":
            expect_args = i + 1 < len(argv)
            if not expect_args:
                print("--baseline requires a file argument", file=sys.stderr)
                return 2
            baseline_path = argv[i + 1]
            i += 2
        elif arg == "--calibrate":
            if i + 1 >= len(argv):
                print("--calibrate requires a file argument", file=sys.stderr)
                return 2
            calibrate_path = argv[i + 1]
            i += 2
        elif arg == "--max-regress":
            if i + 1 >= len(argv):
                print("--max-regress requires a number", file=sys.stderr)
                return 2
            max_regress = float(argv[i + 1])
            i += 2
        else:
            paths.append(arg)
            i += 1
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    calibration_bands = None
    if calibrate_path is not None:
        try:
            calibration_bands = load(calibrate_path)
        except (OSError, json.JSONDecodeError) as err:
            print(f"{calibrate_path}: unreadable: {err}", file=sys.stderr)
            return 1

    baseline_rates = None
    baseline_hedge = None
    baseline_partition = None
    if baseline_path is not None:
        try:
            baseline = load(baseline_path)
            if baseline.get("schema") == HEDGE_SCHEMA:
                check_hedge_report(baseline, baseline_path)
                baseline_hedge = baseline
            elif baseline.get("schema") == PARTITION_SCHEMA:
                check_partition_report(baseline, baseline_path)
                baseline_partition = baseline
            else:
                baseline_rates = check_bench_report(baseline, baseline_path)
        except (OSError, json.JSONDecodeError) as err:
            print(f"{baseline_path}: unreadable: {err}", file=sys.stderr)
            return 1
        except Invalid as err:
            print(f"{baseline_path}: INVALID: {err}", file=sys.stderr)
            return 1

    for path in paths:
        try:
            report = load(path)
            if report.get("schema") == BENCH_SCHEMA:
                rates = check_bench_report(report, path)
                if baseline_rates is not None:
                    compare_bench(rates, baseline_rates, max_regress, path)
            elif report.get("schema") == CHAOS_SCHEMA:
                check_chaos_report(report, path)
            elif report.get("schema") == TRAFFIC_SCHEMA:
                check_traffic_report(report, path)
            elif report.get("schema") == HEDGE_SCHEMA:
                check_hedge_report(report, path)
                if baseline_hedge is not None:
                    compare_hedge(report, baseline_hedge, max_regress, path)
            elif report.get("schema") == PARTITION_SCHEMA:
                check_partition_report(report, path)
                if baseline_partition is not None:
                    compare_partition(report, baseline_partition, max_regress,
                                      path)
            elif report.get("schema") == REALEXEC_SCHEMA:
                check_realexec_report(report, path)
                if calibration_bands is not None:
                    calibrate_realexec(report, calibration_bands, path)
            else:
                check_report(report, path)
        except (OSError, json.JSONDecodeError) as err:
            print(f"{path}: unreadable: {err}", file=sys.stderr)
            return 1
        except Invalid as err:
            print(f"{path}: INVALID: {err}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
