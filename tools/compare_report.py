#!/usr/bin/env python3
"""Differential run reports: diff two canary report JSONs with tolerance
bands and emit a pass/fail verdict for CI.

Both inputs must carry the same schema tag (canary.run_report/v2 or /v3,
or any of the bench schemas — the tool diffs numeric leaves generically).
Every numeric leaf reachable through nested objects is compared:

    scalars.*, metrics.counters.*, metrics.gauges.*,
    metrics.histograms.<name>.{count,mean,min,max,p50,p95,p99},
    breakdown.recoveries.*, breakdown.*.components.*,
    tail.groups.<metric>.p<P>.* (percentile entries indexed by target),
    timeseries.{window_s,windows,evicted}, obs.*, ...

Arrays other than tail percentile entries (series rows, timeseries rows)
are not diffed — they are per-window raw data, not headline metrics.
Identity-like leaves (trace/function ids, seeds, chain_events) are
ignored by default because they legitimately differ between runs.

A metric passes when |candidate - baseline| <= tol * max(|baseline|,
abs_floor). The default band is --default-tol (0.10); per-metric bands
are given as repeatable `--tol GLOB=FRAC` options matched against the
flattened path, first match wins, e.g.:

    compare_report.py --tol 'metrics.histograms.*.p99=0.05' \
        --tol 'scalars.cost_usd_mean=0.02' base.json candidate.json

Metrics present on only one side are reported: missing-in-candidate is a
failure (a section disappeared), new-in-candidate is informational.

Exit status: 0 when every compared metric is within its band, 1 on any
out-of-band metric / missing metric / schema mismatch, 2 on usage
errors. Stdlib only.
"""

import fnmatch
import json
import sys

# Leaves that are expected to differ between otherwise-equivalent runs:
# identity handles, seeds, and chain bookkeeping. Matched with fnmatch
# against the flattened dotted path.
DEFAULT_IGNORE = [
    "*.trace",
    "*.function",
    "*.chain_events",
    "params.seed",
    "name",
    "schema",
]


def flatten(node, path="", out=None):
    """Collect numeric leaves of nested dicts into {dotted path: value}.

    Lists are skipped except for tail percentile entries, which are
    re-keyed by their target percentile so the two reports line up even
    if the percentile list order ever changed.
    """
    if out is None:
        out = {}
    if isinstance(node, dict):
        for key, value in node.items():
            sub = f"{path}.{key}" if path else str(key)
            if key == "percentiles" and isinstance(value, list) and \
                    all(isinstance(e, dict) and "p" in e for e in value):
                for entry in value:
                    flatten(entry, f"{path}.p{entry['p']:g}", out)
                continue
            flatten(value, sub, out)
    elif isinstance(node, bool):
        out[path] = 1.0 if node else 0.0
    elif isinstance(node, (int, float)):
        out[path] = float(node)
    return out


def parse_tol(spec):
    if "=" not in spec:
        raise ValueError(f"--tol expects GLOB=FRAC, got {spec!r}")
    pattern, _, frac = spec.rpartition("=")
    return pattern, float(frac)


def band_for(path, bands, default_tol):
    for pattern, tol in bands:
        if fnmatch.fnmatchcase(path, pattern):
            return tol
    return default_tol


def ignored(path, ignore):
    return any(fnmatch.fnmatchcase(path, pat) for pat in ignore)


def load(path):
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def compare(baseline, candidate, bands, default_tol, abs_floor, ignore):
    """Returns (failures, compared, new_keys) lists."""
    base = {k: v for k, v in flatten(baseline).items()
            if not ignored(k, ignore)}
    cand = {k: v for k, v in flatten(candidate).items()
            if not ignored(k, ignore)}

    failures = []
    compared = 0
    for key in sorted(base):
        if key not in cand:
            failures.append((key, base[key], None, None,
                             "missing in candidate"))
            continue
        compared += 1
        b, c = base[key], cand[key]
        tol = band_for(key, bands, default_tol)
        allowed = tol * max(abs(b), abs_floor)
        if abs(c - b) > allowed:
            rel = (c - b) / b if b else float("inf")
            failures.append((key, b, c, tol,
                             f"delta {c - b:+.6g} ({rel:+.1%}) exceeds "
                             f"band {tol:.0%}"))
    new_keys = sorted(set(cand) - set(base))
    return failures, compared, new_keys


def main(argv):
    bands = []
    default_tol = 0.10
    abs_floor = 1e-9
    ignore = list(DEFAULT_IGNORE)
    paths = []
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--tol":
            if i + 1 >= len(argv):
                print("--tol requires GLOB=FRAC", file=sys.stderr)
                return 2
            try:
                bands.append(parse_tol(argv[i + 1]))
            except ValueError as err:
                print(err, file=sys.stderr)
                return 2
            i += 2
        elif arg == "--default-tol":
            if i + 1 >= len(argv):
                print("--default-tol requires a number", file=sys.stderr)
                return 2
            default_tol = float(argv[i + 1])
            i += 2
        elif arg == "--abs-floor":
            if i + 1 >= len(argv):
                print("--abs-floor requires a number", file=sys.stderr)
                return 2
            abs_floor = float(argv[i + 1])
            i += 2
        elif arg == "--ignore":
            if i + 1 >= len(argv):
                print("--ignore requires a glob", file=sys.stderr)
                return 2
            ignore.append(argv[i + 1])
            i += 2
        else:
            paths.append(arg)
            i += 1
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    base_path, cand_path = paths

    try:
        baseline = load(base_path)
        candidate = load(cand_path)
    except (OSError, json.JSONDecodeError) as err:
        print(f"unreadable input: {err}", file=sys.stderr)
        return 1

    if baseline.get("schema") != candidate.get("schema"):
        print(f"FAIL: schema mismatch: {base_path} is "
              f"{baseline.get('schema')!r}, {cand_path} is "
              f"{candidate.get('schema')!r}")
        return 1

    failures, compared, new_keys = compare(
        baseline, candidate, bands, default_tol, abs_floor, ignore)

    for key in new_keys:
        print(f"note: {key}: only in candidate")
    for key, b, c, tol, reason in failures:
        if c is None:
            print(f"FAIL {key}: baseline {b:.6g}, {reason}")
        else:
            print(f"FAIL {key}: baseline {b:.6g}, candidate {c:.6g}: "
                  f"{reason}")

    if failures:
        print(f"FAIL: {len(failures)} of {compared + len(failures)} "
              f"metric(s) out of band "
              f"({base_path} vs {cand_path})")
        return 1
    print(f"PASS: {compared} metric(s) within band "
          f"({len(new_keys)} new), {base_path} vs {cand_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
