// DL training example (the paper's headline workload).
//
// Part 1 runs *real* data-parallel training of a miniature MLP with
// Canary-style per-epoch weight checkpoints stored in the real in-memory
// KV store, kills the "function" mid-training, restores the latest
// checkpoint, and verifies that the recovered run produces bit-identical
// weights to an uninterrupted one — the correctness property Canary's DL
// recovery relies on.
//
// Part 2 runs the simulated DL workload (ResNet50-scale checkpoints)
// through the full platform and compares ideal / retry / Canary.
//
//   ./dl_training [error_rate=0.3]
#include <cstdlib>
#include <iostream>

#include "canary/client.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "kvstore/kvstore.hpp"
#include "workloads/kernels/mini_dl.hpp"
#include "workloads/workloads.hpp"

using namespace canary;
using workloads::kernels::Dataset;
using workloads::kernels::MiniMlp;

namespace {

void real_training_with_checkpoints() {
  std::cout << "--- Part 1: real training with KV-store checkpoints ---\n";
  const auto data = Dataset::synthesize(2000, 24, 5, /*seed=*/11);
  constexpr int kEpochs = 12;
  constexpr int kKillAfter = 7;
  constexpr double kLr = 0.08;

  // Reference: uninterrupted training.
  MiniMlp reference(24, 48, 5, /*seed=*/3);
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    reference.train_epoch(data, kLr, /*threads=*/4);
  }

  // Faulty run: the function registers its weights as critical data with
  // the Canary checkpoint client (paper §IV-C4a) and saves after each
  // epoch; the container is "killed" after epoch 7 and recovery restores
  // the latest checkpoint.
  kv::KvConfig kv_config;
  kv_config.max_entry_size = Bytes::kib(4);  // small KV limit: spill path
  kv::KvStore store(kv_config, {NodeId{1}, NodeId{2}, NodeId{3}});
  client::InMemoryBlobStore blobs;
  client::CheckpointClient checkpoints(store, blobs, "dl-train-0");

  MiniMlp model(24, 48, 5, /*seed=*/3);
  checkpoints.register_critical("weights",
                                [&model] { return model.serialize(); });
  double loss = 0.0;
  for (int epoch = 0; epoch < kKillAfter; ++epoch) {
    loss = model.train_epoch(data, kLr, /*threads=*/4);
    const Status saved = checkpoints.save(
        static_cast<std::uint64_t>(epoch), "epoch=" + std::to_string(epoch));
    CANARY_CHECK(saved.ok(), "checkpoint save failed");
  }
  std::cout << "  trained " << kKillAfter << " epochs (loss "
            << TextTable::num(loss, 4) << ", " << checkpoints.spills()
            << " oversized checkpoints spilled), container killed!\n";

  // Recovery runs as a fresh function instance over the same stores.
  client::CheckpointClient recovered_client(store, blobs, "dl-train-0");
  const auto latest = recovered_client.load_latest();
  CANARY_CHECK(latest.has_value(), "latest checkpoint missing");
  CANARY_CHECK(latest->critical_data.size() == 1, "weights not captured");
  MiniMlp restored = MiniMlp::deserialize(latest->critical_data[0].second);
  std::cout << "  restored epoch-" << latest->state_index << " weights ("
            << latest->critical_data[0].second.size()
            << " bytes) via the checkpoint client\n";
  for (std::uint64_t epoch = latest->state_index + 1;
       epoch < static_cast<std::uint64_t>(kEpochs);
       ++epoch) {
    loss = restored.train_epoch(data, kLr, /*threads=*/4);
  }

  const bool identical = restored.serialize() == reference.serialize();
  std::cout << "  final loss " << TextTable::num(loss, 4) << ", accuracy "
            << TextTable::num(restored.accuracy(data) * 100, 1)
            << "%; recovered weights "
            << (identical ? "BIT-IDENTICAL to" : "DIFFER from")
            << " the uninterrupted run\n\n";
}

void simulated_platform_comparison(double error_rate) {
  std::cout << "--- Part 2: simulated FaaS platform, DL workload ---\n";
  const std::vector<faas::JobSpec> jobs = {
      workloads::make_job(workloads::WorkloadKind::kDlTraining, 50)};
  TextTable table({"strategy", "makespan [s]", "recovery [s]", "cost [$]"});
  for (const auto& strategy : {recovery::StrategyConfig::ideal(),
                               recovery::StrategyConfig::retry(),
                               recovery::StrategyConfig::canary_full()}) {
    harness::ScenarioConfig config;
    config.strategy = strategy;
    config.error_rate = error_rate;
    config.seed = 42;
    const auto agg = harness::run_repetitions(config, jobs, 5);
    table.add_row({std::string(strategy.label()),
                   TextTable::num(agg.makespan_s.mean()),
                   TextTable::num(agg.total_recovery_s.mean()),
                   TextTable::num(agg.cost_usd.mean(), 4)});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const double error_rate = argc > 1 ? std::atof(argv[1]) : 0.30;
  std::cout << "Canary DL training example (error rate " << error_rate * 100
            << "%)\n\n";
  real_training_with_checkpoints();
  simulated_platform_comparison(error_rate);
  return 0;
}
