// Quickstart: run one stateful workload on the simulated FaaS platform
// under the three scenarios the paper compares — failure-free (ideal),
// the platform's default retry recovery, and Canary — and print recovery
// time, makespan, and dollar cost side by side.
//
//   ./quickstart [error_rate=0.3] [functions=40]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace canary;

int main(int argc, char** argv) {
  const double error_rate = argc > 1 ? std::atof(argv[1]) : 0.30;
  const std::size_t functions =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 40;

  std::cout << "Canary quickstart: web-service workload, " << functions
            << " functions, error rate " << error_rate * 100 << "%, 16-node cluster\n\n";

  const std::vector<faas::JobSpec> jobs = {
      workloads::make_job(workloads::WorkloadKind::kWebService, functions)};

  harness::ScenarioConfig base;
  base.error_rate = error_rate;
  base.seed = 7;

  const recovery::StrategyConfig strategies[] = {
      recovery::StrategyConfig::ideal(),
      recovery::StrategyConfig::retry(),
      recovery::StrategyConfig::canary_full(),
  };

  TextTable table({"strategy", "recovery [s]", "makespan [s]", "cost [$]",
                   "failures", "replica cost [$]"});
  double retry_recovery = 0.0;
  double canary_recovery = 0.0;
  for (const auto& strategy : strategies) {
    harness::ScenarioConfig config = base;
    config.strategy = strategy;
    const auto agg = harness::run_repetitions(config, jobs, 5);
    if (strategy.kind == recovery::StrategyKind::kRetry) {
      retry_recovery = agg.total_recovery_s.mean();
    }
    if (strategy.kind == recovery::StrategyKind::kCanary) {
      canary_recovery = agg.total_recovery_s.mean();
    }
    table.add_row({std::string(strategy.label()),
                   TextTable::num(agg.total_recovery_s.mean()),
                   TextTable::num(agg.makespan_s.mean()),
                   TextTable::num(agg.cost_usd.mean(), 4),
                   TextTable::num(agg.failures.mean(), 1),
                   TextTable::num(agg.replica_cost_usd.mean(), 4)});
  }
  table.print(std::cout);

  std::cout << "\nCanary reduces recovery time by "
            << TextTable::num(
                   harness::reduction_pct(retry_recovery, canary_recovery), 1)
            << "% vs the default retry strategy (paper: up to 83%).\n";
  return 0;
}
