// Command-line experiment driver: run any scenario the library supports
// without writing code. This is the "downstream user" entry point for
// exploring the design space beyond the paper's figures.
//
//   ./experiment_cli --workload=web-service --strategy=canary-dr
//       --error-rate=0.3 --functions=100 --nodes=16 --reps=5
//       [--node-failures=2] [--sla=60] [--proactive] [--csv] [--breakdown]
//       [--report=run_report.json] [--trace=run.trace.json]
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "common/table.hpp"
#include "faas/substrate.hpp"
#include "harness/experiment.hpp"
#include "obs/chrome_trace.hpp"
#include "realexec/backend.hpp"
#include "workloads/workloads.hpp"

using namespace canary;

namespace {

struct Options {
  std::string workload = "web-service";
  std::string strategy = "canary-dr";
  std::string backend = "sim";
  double error_rate = 0.2;
  std::size_t functions = 100;
  std::size_t nodes = 16;
  int reps = 5;
  int node_failures = 0;
  double sla_seconds = 0.0;
  bool proactive = false;
  bool attribution = false;
  double window_seconds = 1.0;
  std::uint64_t seed = 42;
  bool csv = false;
  bool breakdown = false;
  bool help = false;
  std::string report_path;
  std::string trace_path;
};

void usage() {
  std::cout <<
      "usage: experiment_cli [options]\n"
      "  --workload=K     dl-training | web-service | spark-mining |\n"
      "                   compression | graph-bfs | mixed | mapreduce\n"
      "  --strategy=S     ideal | retry | canary-dr | canary-ar | canary-lr |\n"
      "                   canary-ckpt | canary-repl | rr | as\n"
      "  --backend=B      sim (default) | real. real runs the workload's\n"
      "                   miniature kernel in forked worker processes and\n"
      "                   SIGKILLs one per --node-failures (supports\n"
      "                   graph-bfs | compression | spark-mining with\n"
      "                   retry | canary-ckpt | as)\n"
      "  --error-rate=F   0.0 - 0.95 (default 0.2)\n"
      "  --functions=N    functions in the job (default 100)\n"
      "  --nodes=N        cluster size (default 16)\n"
      "  --reps=N         repetitions (default 5)\n"
      "  --node-failures=N  node-level failures during the run\n"
      "  --sla=SECONDS    job deadline (enables SLA accounting)\n"
      "  --proactive      enable proactive failure mitigation\n"
      "  --attribution    enable tail-latency attribution + windowed\n"
      "                   time-series (report schema becomes v3; the\n"
      "                   trace gains a counter track)\n"
      "  --window=SECONDS time-series window width (default 1.0)\n"
      "  --seed=N         base seed (default 42)\n"
      "  --csv            emit CSV instead of an aligned table\n"
      "  --breakdown      print the recovery critical-path breakdown\n"
      "                   (detection/scheduling/launch/init/restore/re-exec)\n"
      "  --report=FILE    write a run_report.json (deterministic in seed)\n"
      "  --trace=FILE     write a chrome://tracing span timeline of one run\n";
}

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    out = arg + len + 1;
    return true;
  }
  return false;
}

Options parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (parse_flag(argv[i], "--workload", value)) {
      opts.workload = value;
    } else if (parse_flag(argv[i], "--strategy", value)) {
      opts.strategy = value;
    } else if (parse_flag(argv[i], "--backend", value)) {
      opts.backend = value;
    } else if (parse_flag(argv[i], "--error-rate", value)) {
      opts.error_rate = std::atof(value.c_str());
    } else if (parse_flag(argv[i], "--functions", value)) {
      opts.functions = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (parse_flag(argv[i], "--nodes", value)) {
      opts.nodes = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (parse_flag(argv[i], "--reps", value)) {
      opts.reps = std::atoi(value.c_str());
    } else if (parse_flag(argv[i], "--node-failures", value)) {
      opts.node_failures = std::atoi(value.c_str());
    } else if (parse_flag(argv[i], "--sla", value)) {
      opts.sla_seconds = std::atof(value.c_str());
    } else if (parse_flag(argv[i], "--seed", value)) {
      opts.seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (parse_flag(argv[i], "--report", value)) {
      opts.report_path = value;
    } else if (parse_flag(argv[i], "--trace", value)) {
      opts.trace_path = value;
    } else if (parse_flag(argv[i], "--window", value)) {
      opts.window_seconds = std::atof(value.c_str());
    } else if (std::strcmp(argv[i], "--proactive") == 0) {
      opts.proactive = true;
    } else if (std::strcmp(argv[i], "--attribution") == 0) {
      opts.attribution = true;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      opts.csv = true;
    } else if (std::strcmp(argv[i], "--breakdown") == 0) {
      opts.breakdown = true;
    } else {
      opts.help = true;
    }
  }
  return opts;
}

faas::JobSpec build_job(const Options& opts) {
  if (opts.workload == "mixed") {
    return workloads::make_mixed_batch(opts.functions);
  }
  if (opts.workload == "mapreduce") {
    const std::size_t reducers = std::max<std::size_t>(1, opts.functions / 5);
    return workloads::make_mapreduce_job(opts.functions - reducers, reducers);
  }
  for (const auto kind : workloads::kAllWorkloads) {
    if (opts.workload == workloads::to_string_view(kind)) {
      return workloads::make_job(kind, opts.functions);
    }
  }
  std::cerr << "unknown workload '" << opts.workload << "'\n";
  std::exit(2);
}

recovery::StrategyConfig build_strategy(const Options& opts) {
  using recovery::StrategyConfig;
  static const std::map<std::string, StrategyConfig> kStrategies = {
      {"ideal", StrategyConfig::ideal()},
      {"retry", StrategyConfig::retry()},
      {"canary-dr", StrategyConfig::canary_full(core::ReplicationMode::kDynamic)},
      {"canary-ar",
       StrategyConfig::canary_full(core::ReplicationMode::kAggressive)},
      {"canary-lr", StrategyConfig::canary_full(core::ReplicationMode::kLenient)},
      {"canary-ckpt", StrategyConfig::canary_checkpoint_only()},
      {"canary-repl", StrategyConfig::canary_replication_only()},
      {"rr", StrategyConfig::request_replication(1)},
      {"as", StrategyConfig::active_standby()},
  };
  auto it = kStrategies.find(opts.strategy);
  if (it == kStrategies.end()) {
    std::cerr << "unknown strategy '" << opts.strategy << "'\n";
    std::exit(2);
  }
  return it->second;
}

// Real-execution path: the workload's miniature kernel in forked worker
// processes, --node-failures SIGKILLs mid-execution, recovery under the
// requested policy. Prints the same metric table shape as the simulated
// path plus the per-component recovery decomposition.
int run_real_backend(const Options& opts) {
  realexec::RealScenarioConfig rc;
  if (opts.workload == "graph-bfs") {
    rc.kernel = realexec::KernelKind::kGraphBfs;
    rc.size_param = 2u << 20;
  } else if (opts.workload == "compression") {
    rc.kernel = realexec::KernelKind::kCompression;
    rc.size_param = 2u << 20;
  } else if (opts.workload == "spark-mining") {
    rc.kernel = realexec::KernelKind::kCensus;
    rc.size_param = 100'000;
  } else {
    std::cerr << "workload '" << opts.workload
              << "' has no real-execution kernel (try graph-bfs, "
                 "compression or spark-mining)\n";
    return 2;
  }
  if (opts.strategy == "retry") {
    rc.policy = realexec::RecoveryPolicy::kRetry;
  } else if (opts.strategy == "canary-ckpt") {
    rc.policy = realexec::RecoveryPolicy::kCheckpointRestore;
  } else if (opts.strategy == "as") {
    rc.policy = realexec::RecoveryPolicy::kWarmSpare;
  } else {
    std::cerr << "strategy '" << opts.strategy
              << "' is not available on the real backend (try retry, "
                 "canary-ckpt or as)\n";
    return 2;
  }
  if (!opts.report_path.empty() || !opts.trace_path.empty()) {
    std::cerr << "--report/--trace are simulator-only (the real backend "
                 "has no deterministic event log)\n";
    return 2;
  }
  rc.seed = opts.seed;
  rc.kills = static_cast<std::uint32_t>(std::max(opts.node_failures, 0));

  realexec::ControllerConfig base;
  base.kv.max_entry_size = Bytes::mib(64);
  realexec::RealBackend backend(base);

  SampleSet makespan, window, recoveries;
  faas::SubstrateRunSummary last;
  for (int rep = 0; rep < std::max(opts.reps, 1); ++rep) {
    realexec::RealScenarioConfig rep_config = rc;
    rep_config.seed = opts.seed + static_cast<std::uint64_t>(rep);
    const auto result = backend.run(rep_config);
    for (const auto& v : result.violations) {
      std::cerr << "oracle violation: " << v << "\n";
    }
    if (!result.violations.empty()) return 1;
    last = result.summary();
    makespan.add(result.makespan_s);
    window.add(result.recovery.window_s());
    recoveries.add(static_cast<double>(result.recoveries));
  }

  std::cout << "workload=" << opts.workload << " strategy=" << opts.strategy
            << " backend=real kills=" << rc.kills << " reps=" << opts.reps
            << "\n";
  TextTable table({"metric", "mean", "stddev", "min", "max"});
  auto row = [&](const std::string& name, const SampleSet& samples,
                 int precision = 3) {
    table.add_row({name, TextTable::num(samples.mean(), precision),
                   TextTable::num(samples.stddev(), precision),
                   TextTable::num(samples.min(), precision),
                   TextTable::num(samples.max(), precision)});
  };
  row("makespan [s]", makespan);
  row("recovery window [s]", window);
  row("recoveries", recoveries, 1);
  if (opts.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  if (opts.breakdown) {
    TextTable bd({"component", "last run [s]"});
    bd.add_row({"detection", TextTable::num(last.detection_s, 3)});
    bd.add_row({"scheduling", TextTable::num(last.scheduling_s, 3)});
    bd.add_row({"launch", TextTable::num(last.launch_s, 3)});
    bd.add_row({"init", TextTable::num(last.init_s, 3)});
    bd.add_row({"restore", TextTable::num(last.restore_s, 3)});
    bd.add_row({"re-exec", TextTable::num(last.re_exec_s, 3)});
    if (opts.csv) {
      bd.print_csv(std::cout);
    } else {
      bd.print(std::cout);
    }
  }
  std::cout << "stale-epoch rejects: " << last.stale_epoch_rejects << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse(argc, argv);
  if (opts.help) {
    usage();
    return 1;
  }

  const auto backend = faas::parse_backend(opts.backend);
  if (!backend.has_value()) {
    std::cerr << "unknown backend '" << opts.backend << "' (sim | real)\n";
    return 2;
  }
  if (*backend == faas::BackendKind::kReal) {
    return run_real_backend(opts);
  }

  auto job = build_job(opts);
  if (opts.sla_seconds > 0.0) job.sla = Duration::sec(opts.sla_seconds);
  const std::vector<faas::JobSpec> jobs = {std::move(job)};

  harness::ScenarioConfig config;
  config.strategy = build_strategy(opts);
  config.strategy.canary.proactive.enabled = opts.proactive;
  config.strategy.canary.sla_aware = opts.sla_seconds > 0.0;
  config.error_rate = opts.error_rate;
  config.cluster_nodes = opts.nodes;
  config.seed = opts.seed;
  for (int n = 0; n < opts.node_failures; ++n) {
    config.node_failure_offsets.push_back(Duration::sec(8.0 * (n + 1)));
  }
  if (opts.attribution) {
    config.tail.enabled = true;
    config.timeseries.enabled = true;
    config.timeseries.window = Duration::sec(opts.window_seconds);
  }

  const auto agg = harness::run_repetitions(config, jobs, opts.reps);

  TextTable table({"metric", "mean", "stddev", "min", "max"});
  auto row = [&](const std::string& name, const SampleSet& samples,
                 int precision = 2) {
    table.add_row({name, TextTable::num(samples.mean(), precision),
                   TextTable::num(samples.stddev(), precision),
                   TextTable::num(samples.min(), precision),
                   TextTable::num(samples.max(), precision)});
  };
  row("makespan [s]", agg.makespan_s);
  row("total recovery [s]", agg.total_recovery_s);
  row("mean recovery/failure [s]", agg.mean_recovery_s);
  row("lost work [s]", agg.lost_work_s);
  row("failures", agg.failures, 1);
  row("cost [$]", agg.cost_usd, 4);
  row("replica cost [$]", agg.replica_cost_usd, 4);
  if (opts.sla_seconds > 0.0) row("SLA violations", agg.sla_violations, 1);

  std::cout << "workload=" << opts.workload << " strategy=" << opts.strategy
            << " error=" << opts.error_rate << " functions=" << opts.functions
            << " nodes=" << opts.nodes << " reps=" << opts.reps << "\n";
  if (agg.incomplete_runs > 0) {
    std::cout << "WARNING: " << agg.incomplete_runs
              << " repetition(s) ended with incomplete jobs\n";
  }
  if (opts.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  if (opts.breakdown) {
    const obs::BreakdownReport& bd = agg.breakdown;
    TextTable bd_table({"component", "recovery [s]", "end-to-end [s]"});
    for (std::size_t c = 0; c < obs::kPathComponentCount; ++c) {
      const auto component = static_cast<obs::PathComponent>(c);
      bd_table.add_row({std::string(obs::to_string_view(component)),
                        TextTable::num(bd.recovery_components[component], 3),
                        TextTable::num(bd.end_to_end_components[component], 3)});
    }
    std::cout << "critical-path breakdown (" << bd.recovery_count
              << " recoveries, " << TextTable::num(bd.recovery_window_s, 3)
              << " s inside failure-to-recovery windows):\n";
    if (opts.csv) {
      bd_table.print_csv(std::cout);
    } else {
      bd_table.print(std::cout);
    }
    if (bd.slo_targets > 0) {
      std::cout << "SLO: " << bd.slo_violations << "/" << bd.slo_targets
                << " breached (ratio "
                << TextTable::num(bd.slo_violation_ratio(), 3) << ")";
      for (const auto& [component, count] : bd.slo_breaches_by_component) {
        std::cout << " " << component << "=" << count;
      }
      std::cout << "\n";
    }
  }

  if (!opts.report_path.empty()) {
    obs::RunReport report = harness::make_report("experiment_cli", config, agg);
    report.set_param("workload", opts.workload);
    report.set_param("functions", static_cast<double>(opts.functions));
    report.set_param("node_failures", static_cast<double>(opts.node_failures));
    report.set_param("sla_s", opts.sla_seconds);
    report.set_param("proactive", opts.proactive ? "1" : "0");
    if (!report.save(opts.report_path)) {
      std::cerr << "failed to write " << opts.report_path << "\n";
      return 1;
    }
    std::cout << "report: " << opts.report_path << "\n";
  }

  if (!opts.trace_path.empty()) {
    // One extra run of the base seed with span recording on: the trace is
    // a timeline of a single repetition, not an aggregate. The causal DAG
    // rides along as instant + flow events linking failures to recoveries.
    harness::ScenarioConfig traced = config;
    traced.record_spans = true;
    traced.record_events = true;
    const auto run = harness::ScenarioRunner::run(traced, jobs);
    // With attribution on, the windowed rollups ride along as a counter
    // track; passing nullptr otherwise keeps the trace byte-identical.
    const obs::TimeSeries* series =
        run.timeseries.enabled() ? &run.timeseries : nullptr;
    if (run.spans == nullptr ||
        !obs::write_chrome_trace_file(opts.trace_path, run.spans.get(),
                                      run.events.get(), series)) {
      std::cerr << "failed to write " << opts.trace_path << "\n";
      return 1;
    }
    std::cout << "trace: " << opts.trace_path << " (" << run.spans->size()
              << " spans, " << (run.events ? run.events->size() : 0)
              << " events; open in chrome://tracing or ui.perfetto.dev)\n";
  }
  return 0;
}
