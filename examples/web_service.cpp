// Web-service example (the paper's database-backed workload) showing the
// *exactly-once* property Canary targets (§IV-A1).
//
// Part 1 runs a real request handler against a miniature database with an
// idempotency request log that rides the checkpoint: the function is
// killed mid-batch, restored from the checkpointed log, and re-offered
// the full request stream — duplicates are answered from the log without
// re-executing, so the database ends in exactly the state of an
// uninterrupted run.
//
// Part 2 runs the simulated web-service workload through the platform.
//
//   ./web_service [error_rate=0.3] [requests=50]
#include <cstdlib>
#include <iostream>

#include "canary/client.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "workloads/kernels/request_log.hpp"
#include "workloads/workloads.hpp"

using namespace canary;
using workloads::kernels::MiniDb;
using workloads::kernels::RequestLog;

namespace {

std::string handle_request(MiniDb& db, std::uint64_t id) {
  // Five "queries" per request (§V-C2), one of them a non-idempotent
  // mutation — re-executing a request would corrupt the ledger row.
  const std::string key = "account-" + std::to_string(id % 7);
  db.append(key, "+" + std::to_string(id));
  const auto row = db.get(key);
  return "ok:" + *row;
}

void exactly_once_demo(std::size_t requests) {
  std::cout << "--- Part 1: exactly-once request processing ---\n";
  // Reference: uninterrupted processing.
  MiniDb reference_db;
  RequestLog reference_log;
  for (std::uint64_t r = 0; r < requests; ++r) {
    reference_log.execute(r, [&] { return handle_request(reference_db, r); });
  }

  // Faulty run: checkpoint the request log through the Canary client
  // after every request; kill at 60%.
  kv::KvConfig kv_config;
  kv::KvStore store(kv_config, {NodeId{1}, NodeId{2}});
  client::InMemoryBlobStore blobs;
  client::CheckpointClient checkpoints(store, blobs, "web-0");

  MiniDb db;
  RequestLog log;
  const std::uint64_t kill_at = requests * 6 / 10;
  for (std::uint64_t r = 0; r < kill_at; ++r) {
    log.execute(r, [&] { return handle_request(db, r); });
    CANARY_CHECK(checkpoints.save(r, log.serialize()).ok(), "save failed");
  }
  std::cout << "  processed " << kill_at << " requests, container killed!\n";

  // Recovery: a fresh function instance restores the log and is fed the
  // WHOLE request stream again (the platform retries everything).
  // NOTE: the database state is the backend's (it survived); only the
  // function's in-memory state was lost.
  const auto restored = checkpoints.load_latest();
  CANARY_CHECK(restored.has_value(), "no checkpoint");
  RequestLog recovered = RequestLog::deserialize(restored->state_data);
  std::uint64_t replayed = 0;
  for (std::uint64_t r = 0; r < requests; ++r) {
    bool was_replay = false;
    recovered.execute(r, [&] { return handle_request(db, r); }, &was_replay);
    if (was_replay) ++replayed;
  }
  std::cout << "  recovery re-offered all " << requests << " requests: "
            << replayed << " deduplicated, "
            << recovered.executions() - kill_at << " executed fresh\n";

  const bool exact =
      db.mutations() == reference_db.mutations() &&
      recovered.size() == reference_log.size() &&
      db.get("account-3") == reference_db.get("account-3");
  std::cout << "  database mutations: " << db.mutations() << " (reference "
            << reference_db.mutations() << ") — "
            << (exact ? "EXACTLY-ONCE upheld" : "DUPLICATED side effects")
            << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const double error_rate = argc > 1 ? std::atof(argv[1]) : 0.30;
  const std::size_t requests =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 50;
  std::cout << "Canary web-service example (" << requests
            << " requests, error rate " << error_rate * 100 << "%)\n\n";

  exactly_once_demo(requests);

  std::cout << "--- Part 2: simulated platform, web-service workload ---\n";
  const std::vector<faas::JobSpec> jobs = {
      workloads::make_job(workloads::WorkloadKind::kWebService, 80)};
  TextTable table({"strategy", "makespan [s]", "recovery [s]", "cost [$]"});
  for (const auto& strategy : {recovery::StrategyConfig::ideal(),
                               recovery::StrategyConfig::retry(),
                               recovery::StrategyConfig::canary_full()}) {
    harness::ScenarioConfig config;
    config.strategy = strategy;
    config.error_rate = error_rate;
    config.seed = 11;
    const auto agg = harness::run_repetitions(config, jobs, 5);
    table.add_row({std::string(strategy.label()),
                   TextTable::num(agg.makespan_s.mean()),
                   TextTable::num(agg.total_recovery_s.mean()),
                   TextTable::num(agg.cost_usd.mean(), 4)});
  }
  table.print(std::cout);
  return 0;
}
