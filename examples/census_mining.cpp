// Census data-mining example (the paper's Spark workload: diversity index
// at the local and national level over US census data).
//
// Part 1 computes the real diversity index over a synthetic census
// extract with the data-parallel map/aggregate kernel, checkpointing the
// aggregation state mid-run and proving that a killed-and-restored
// computation matches the uninterrupted one.
//
// Part 2 runs the simulated Spark-diversity workload through the platform
// under failures.
//
//   ./census_mining [error_rate=0.25] [counties=20000]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "workloads/kernels/census.hpp"
#include "workloads/workloads.hpp"

using namespace canary;
using namespace canary::workloads::kernels;

int main(int argc, char** argv) {
  const double error_rate = argc > 1 ? std::atof(argv[1]) : 0.25;
  const std::size_t counties =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 20000;

  std::cout << "Canary census-mining example (" << counties
            << " counties, error rate " << error_rate * 100 << "%)\n\n";

  std::cout << "--- Part 1: real diversity-index computation ---\n";
  const auto records = synthesize_census(counties, /*seed=*/2017);

  // Parallel map/aggregate (the Spark stage).
  const auto result = diversity_index(records, /*threads=*/8);
  std::cout << "  national diversity index: "
            << TextTable::num(result.national_index, 4) << " over "
            << result.total_population << " people\n";

  // Checkpointed execution: aggregate half, checkpoint, "fail", restore,
  // finish — must match exactly.
  DiversityAggregator first_half;
  for (std::size_t i = 0; i < counties / 2; ++i) first_half.absorb(records[i]);
  const std::string ckpt = first_half.serialize();
  std::cout << "  checkpointed after " << counties / 2 << " counties ("
            << ckpt.size() << " bytes), container killed!\n";
  auto resumed = DiversityAggregator::deserialize(ckpt);
  for (std::size_t i = counties / 2; i < counties; ++i) {
    resumed.absorb(records[i]);
  }
  const bool match = resumed.national_index() == result.national_index &&
                     resumed.counties_processed() == result.county_index.size();
  std::cout << "  restored and finished: national index "
            << TextTable::num(resumed.national_index(), 4) << " — "
            << (match ? "EXACT match with" : "MISMATCH vs")
            << " the uninterrupted run\n\n";

  std::cout << "--- Part 2: simulated platform, spark-mining workload ---\n";
  const std::vector<faas::JobSpec> jobs = {
      workloads::make_job(workloads::WorkloadKind::kSparkMining, 60)};
  TextTable table({"strategy", "makespan [s]", "recovery [s]", "cost [$]"});
  for (const auto& strategy : {recovery::StrategyConfig::ideal(),
                               recovery::StrategyConfig::retry(),
                               recovery::StrategyConfig::canary_full()}) {
    harness::ScenarioConfig config;
    config.strategy = strategy;
    config.error_rate = error_rate;
    config.seed = 7;
    const auto agg = harness::run_repetitions(config, jobs, 5);
    table.add_row({std::string(strategy.label()),
                   TextTable::num(agg.makespan_s.mean()),
                   TextTable::num(agg.total_recovery_s.mean()),
                   TextTable::num(agg.cost_usd.mean(), 4)});
  }
  table.print(std::cout);
  return 0;
}
