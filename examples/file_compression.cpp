// Data-compression example (the paper's SeBS 311.compression workload).
//
// Part 1 compresses a real input with the repository's LZ kernel in
// checkpointed chunks ("a checkpoint is performed after compressing an
// input file"), kills the function mid-stream, restores from the progress
// checkpoint, finishes, and verifies the output decompresses back to the
// original bytes — identical to an uninterrupted run.
//
// Part 2 runs the simulated compression workload through the platform.
//
//   ./file_compression [error_rate=0.3] [input_kib=512]
#include <cstdlib>
#include <iostream>

#include "canary/client.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "workloads/kernels/compress.hpp"
#include "workloads/workloads.hpp"

using namespace canary;
using namespace canary::workloads::kernels;

int main(int argc, char** argv) {
  const double error_rate = argc > 1 ? std::atof(argv[1]) : 0.30;
  const std::size_t input_kib =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 512;

  std::cout << "Canary compression example (" << input_kib
            << " KiB input, error rate " << error_rate * 100 << "%)\n\n";

  std::cout << "--- Part 1: real checkpointed compression ---\n";
  const auto input = make_compressible_data(input_kib * 1024, /*seed=*/6);

  ChunkedCompressor reference;
  while (reference.compress_next_chunk(input)) {
  }

  // Faulty run: checkpoint progress through the Canary client after each
  // chunk; die at ~half the input.
  kv::KvConfig kv_config;
  kv_config.max_entry_size = Bytes::kib(64);  // progress records spill
  kv::KvStore store(kv_config, {NodeId{1}, NodeId{2}});
  client::InMemoryBlobStore blobs;
  client::CheckpointClient checkpoints(store, blobs, "zip-0");

  ChunkedCompressor victim;
  std::uint64_t chunk_index = 0;
  while (victim.bytes_in() < input.size() / 2 &&
         victim.compress_next_chunk(input)) {
    CANARY_CHECK(checkpoints.save(chunk_index++, victim.checkpoint()).ok(),
                 "checkpoint save failed");
  }
  std::cout << "  compressed " << victim.chunks_done() << " chunks ("
            << victim.bytes_in() << " of " << input.size()
            << " bytes), container killed!\n";

  const auto latest = checkpoints.load_latest();
  CANARY_CHECK(latest.has_value(), "no checkpoint survived");
  auto resumed = ChunkedCompressor::restore(latest->state_data);
  std::cout << "  restored at chunk " << resumed.chunks_done()
            << " via the checkpoint client (" << checkpoints.spills()
            << " spilled to the blob store)\n";
  while (resumed.compress_next_chunk(input)) {
  }

  const bool identical = resumed.output() == reference.output();
  const double ratio = static_cast<double>(input.size()) /
                       static_cast<double>(resumed.bytes_out());
  std::cout << "  finished: " << resumed.bytes_out() << " bytes ("
            << TextTable::num(ratio, 2) << "x), output "
            << (identical ? "IDENTICAL to" : "DIFFERS from")
            << " the uninterrupted run\n\n";

  std::cout << "--- Part 2: simulated platform, compression workload ---\n";
  const std::vector<faas::JobSpec> jobs = {
      workloads::make_job(workloads::WorkloadKind::kCompression, 60)};
  TextTable table({"strategy", "makespan [s]", "recovery [s]", "cost [$]"});
  for (const auto& strategy : {recovery::StrategyConfig::ideal(),
                               recovery::StrategyConfig::retry(),
                               recovery::StrategyConfig::canary_full()}) {
    harness::ScenarioConfig config;
    config.strategy = strategy;
    config.error_rate = error_rate;
    config.seed = 13;
    const auto agg = harness::run_repetitions(config, jobs, 5);
    table.add_row({std::string(strategy.label()),
                   TextTable::num(agg.makespan_s.mean()),
                   TextTable::num(agg.total_recovery_s.mean()),
                   TextTable::num(agg.cost_usd.mean(), 4)});
  }
  table.print(std::cout);
  return 0;
}
