// Graph-search example (the paper's SeBS 501.graph-bfs workload: BFS over
// a binary tree with checkpoints every million traversed vertices).
//
// Part 1 runs a real BFS over a multi-million-vertex binary tree in
// 1M-vertex checkpointed steps, kills it mid-traversal, restores from the
// serialized frontier checkpoint, and verifies the traversal completes
// with the same visited-set checksum as an uninterrupted run.
//
// Part 2 runs the simulated graph-bfs workload through the platform and
// additionally demonstrates a node-level failure survived via
// shared-storage checkpoints.
//
//   ./graph_search [vertices_millions=8] [error_rate=0.25]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "workloads/kernels/graph_bfs.hpp"
#include "workloads/workloads.hpp"

using namespace canary;
using namespace canary::workloads::kernels;

int main(int argc, char** argv) {
  const std::uint64_t millions =
      argc > 1 ? static_cast<std::uint64_t>(std::atoi(argv[1])) : 8;
  const double error_rate = argc > 2 ? std::atof(argv[2]) : 0.25;
  const std::uint64_t vertices = millions * 1'000'000;

  std::cout << "Canary graph-search example (" << millions
            << "M vertices, error rate " << error_rate * 100 << "%)\n\n";

  std::cout << "--- Part 1: real checkpointed BFS ---\n";
  const auto graph = CsrGraph::binary_tree(vertices);

  BfsRunner reference(graph, 0);
  while (!reference.done()) reference.step(1'000'000);

  BfsRunner victim(graph, 0);
  std::string latest_checkpoint;
  std::uint64_t checkpoints = 0;
  // Traverse in 1M-vertex states, checkpointing after each (the paper's
  // granularity); die at 60% of the traversal.
  const std::uint64_t kill_at = vertices * 6 / 10;
  while (victim.traversed() < kill_at && !victim.done()) {
    victim.step(1'000'000);
    latest_checkpoint = victim.checkpoint().serialize();
    ++checkpoints;
  }
  std::cout << "  traversed " << victim.traversed() << " vertices, "
            << checkpoints << " checkpoints (latest "
            << latest_checkpoint.size() / 1024 << " KiB), container killed!\n";

  auto restored =
      BfsRunner::restore(graph, BfsCheckpoint::deserialize(latest_checkpoint));
  while (!restored.done()) restored.step(1'000'000);
  const bool match = restored.traversed() == reference.traversed() &&
                     restored.checksum() == reference.checksum();
  std::cout << "  restored traversal finished: " << restored.traversed()
            << " vertices, checksum "
            << (match ? "MATCHES" : "DIFFERS from")
            << " the uninterrupted run\n\n";

  std::cout << "--- Part 2: simulated platform, graph-bfs workload "
               "(with a node failure) ---\n";
  const std::vector<faas::JobSpec> jobs = {
      workloads::make_job(workloads::WorkloadKind::kGraphBfs, 60)};
  TextTable table({"strategy", "makespan [s]", "recovery [s]", "cost [$]"});
  for (const auto& strategy : {recovery::StrategyConfig::ideal(),
                               recovery::StrategyConfig::retry(),
                               recovery::StrategyConfig::canary_full()}) {
    harness::ScenarioConfig config;
    config.strategy = strategy;
    config.error_rate = error_rate;
    config.seed = 5;
    config.node_failure_offsets = {Duration::sec(8.0)};
    const auto agg = harness::run_repetitions(config, jobs, 5);
    table.add_row({std::string(strategy.label()),
                   TextTable::num(agg.makespan_s.mean()),
                   TextTable::num(agg.total_recovery_s.mean()),
                   TextTable::num(agg.cost_usd.mean(), 4)});
  }
  table.print(std::cout);
  std::cout << "\nnode-level failures are survived because small checkpoints "
               "live in the replicated KV store and spilled ones are "
               "asynchronously flushed to shared storage (paper §V-D6).\n";
  return 0;
}
