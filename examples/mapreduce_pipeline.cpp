// Workflow example: MapReduce and multi-stage pipelines on the simulated
// FaaS platform (paper §I-II: "the reducers are launched after successful
// mapper execution"; "modern applications are composed of complex
// workflows where different components depend on the timely completion of
// each sub-component").
//
// A mapper failure under retry delays the entire reduce stage by a full
// re-execution; Canary's checkpoint + replica recovery keeps the trigger
// chain close to the failure-free schedule. The example also puts an SLA
// on the workflow and reports deadline violations.
//
//   ./mapreduce_pipeline [error_rate=0.3] [mappers=24] [reducers=6]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace canary;

int main(int argc, char** argv) {
  const double error_rate = argc > 1 ? std::atof(argv[1]) : 0.30;
  const std::size_t mappers =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 24;
  const std::size_t reducers =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 6;

  std::cout << "Canary workflow example: " << mappers << " mappers -> "
            << reducers << " reducers, error rate " << error_rate * 100
            << "%\n\n";

  auto mapreduce = workloads::make_mapreduce_job(mappers, reducers);
  mapreduce.sla = Duration::sec(45.0);
  const std::vector<faas::JobSpec> jobs = {mapreduce};

  TextTable table({"strategy", "makespan [s]", "recovery [s]", "cost [$]",
                   "SLA violations"});
  for (const auto& strategy : {recovery::StrategyConfig::ideal(),
                               recovery::StrategyConfig::retry(),
                               recovery::StrategyConfig::canary_full()}) {
    harness::ScenarioConfig config;
    config.strategy = strategy;
    config.strategy.canary.sla_aware = true;
    config.error_rate = error_rate;
    config.cluster_nodes = 8;
    config.seed = 17;
    const auto agg = harness::run_repetitions(config, jobs, 5);
    table.add_row({std::string(strategy.label()),
                   TextTable::num(agg.makespan_s.mean()),
                   TextTable::num(agg.total_recovery_s.mean()),
                   TextTable::num(agg.cost_usd.mean(), 4),
                   TextTable::num(agg.sla_violations.mean(), 1)});
  }
  table.print(std::cout);

  std::cout << "\nthree-stage pipeline (4 functions per stage):\n";
  const std::vector<faas::JobSpec> pipeline_jobs = {
      workloads::make_pipeline_job(3, 4)};
  TextTable pipe({"strategy", "makespan [s]", "recovery [s]"});
  for (const auto& strategy : {recovery::StrategyConfig::ideal(),
                               recovery::StrategyConfig::retry(),
                               recovery::StrategyConfig::canary_full()}) {
    harness::ScenarioConfig config;
    config.strategy = strategy;
    config.error_rate = error_rate;
    config.cluster_nodes = 8;
    config.seed = 23;
    const auto agg = harness::run_repetitions(config, pipeline_jobs, 5);
    pipe.add_row({std::string(strategy.label()),
                  TextTable::num(agg.makespan_s.mean()),
                  TextTable::num(agg.total_recovery_s.mean())});
  }
  pipe.print(std::cout);
  std::cout << "\nupstream failures cascade into every dependent stage under "
               "retry; checkpoint + replica recovery bounds the cascade to "
               "one state redo.\n";
  return 0;
}
