file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_pipeline.dir/mapreduce_pipeline.cpp.o"
  "CMakeFiles/mapreduce_pipeline.dir/mapreduce_pipeline.cpp.o.d"
  "mapreduce_pipeline"
  "mapreduce_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
