# Empty dependencies file for mapreduce_pipeline.
# This may be replaced when dependencies are built.
