# Empty compiler generated dependencies file for census_mining.
# This may be replaced when dependencies are built.
