file(REMOVE_RECURSE
  "CMakeFiles/census_mining.dir/census_mining.cpp.o"
  "CMakeFiles/census_mining.dir/census_mining.cpp.o.d"
  "census_mining"
  "census_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
