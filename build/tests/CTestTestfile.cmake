# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/kvstore_test[1]_include.cmake")
include("/root/repo/build/tests/faas_platform_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/canary_metadata_test[1]_include.cmake")
include("/root/repo/build/tests/canary_checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/canary_replication_test[1]_include.cmake")
include("/root/repo/build/tests/canary_core_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_baselines_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_cost_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/workflow_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
include("/root/repo/build/tests/platform_features_test[1]_include.cmake")
include("/root/repo/build/tests/request_log_test[1]_include.cmake")
include("/root/repo/build/tests/full_stack_test[1]_include.cmake")
