file(REMOVE_RECURSE
  "CMakeFiles/faas_platform_test.dir/faas_platform_test.cpp.o"
  "CMakeFiles/faas_platform_test.dir/faas_platform_test.cpp.o.d"
  "faas_platform_test"
  "faas_platform_test.pdb"
  "faas_platform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faas_platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
