file(REMOVE_RECURSE
  "CMakeFiles/canary_replication_test.dir/canary_replication_test.cpp.o"
  "CMakeFiles/canary_replication_test.dir/canary_replication_test.cpp.o.d"
  "canary_replication_test"
  "canary_replication_test.pdb"
  "canary_replication_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canary_replication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
