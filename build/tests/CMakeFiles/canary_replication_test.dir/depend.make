# Empty dependencies file for canary_replication_test.
# This may be replaced when dependencies are built.
