file(REMOVE_RECURSE
  "CMakeFiles/workloads_cost_test.dir/workloads_cost_test.cpp.o"
  "CMakeFiles/workloads_cost_test.dir/workloads_cost_test.cpp.o.d"
  "workloads_cost_test"
  "workloads_cost_test.pdb"
  "workloads_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
