file(REMOVE_RECURSE
  "CMakeFiles/recovery_baselines_test.dir/recovery_baselines_test.cpp.o"
  "CMakeFiles/recovery_baselines_test.dir/recovery_baselines_test.cpp.o.d"
  "recovery_baselines_test"
  "recovery_baselines_test.pdb"
  "recovery_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
