# Empty dependencies file for recovery_baselines_test.
# This may be replaced when dependencies are built.
