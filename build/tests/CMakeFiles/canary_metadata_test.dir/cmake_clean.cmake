file(REMOVE_RECURSE
  "CMakeFiles/canary_metadata_test.dir/canary_metadata_test.cpp.o"
  "CMakeFiles/canary_metadata_test.dir/canary_metadata_test.cpp.o.d"
  "canary_metadata_test"
  "canary_metadata_test.pdb"
  "canary_metadata_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canary_metadata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
