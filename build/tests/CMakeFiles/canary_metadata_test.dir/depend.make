# Empty dependencies file for canary_metadata_test.
# This may be replaced when dependencies are built.
