file(REMOVE_RECURSE
  "CMakeFiles/platform_features_test.dir/platform_features_test.cpp.o"
  "CMakeFiles/platform_features_test.dir/platform_features_test.cpp.o.d"
  "platform_features_test"
  "platform_features_test.pdb"
  "platform_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
