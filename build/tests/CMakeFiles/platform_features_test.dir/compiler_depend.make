# Empty compiler generated dependencies file for platform_features_test.
# This may be replaced when dependencies are built.
