# Empty compiler generated dependencies file for canary_core_test.
# This may be replaced when dependencies are built.
