file(REMOVE_RECURSE
  "CMakeFiles/canary_core_test.dir/canary_core_test.cpp.o"
  "CMakeFiles/canary_core_test.dir/canary_core_test.cpp.o.d"
  "canary_core_test"
  "canary_core_test.pdb"
  "canary_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canary_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
