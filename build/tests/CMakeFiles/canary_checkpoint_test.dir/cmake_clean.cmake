file(REMOVE_RECURSE
  "CMakeFiles/canary_checkpoint_test.dir/canary_checkpoint_test.cpp.o"
  "CMakeFiles/canary_checkpoint_test.dir/canary_checkpoint_test.cpp.o.d"
  "canary_checkpoint_test"
  "canary_checkpoint_test.pdb"
  "canary_checkpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canary_checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
