# Empty compiler generated dependencies file for canary_checkpoint_test.
# This may be replaced when dependencies are built.
