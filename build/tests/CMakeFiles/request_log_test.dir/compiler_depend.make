# Empty compiler generated dependencies file for request_log_test.
# This may be replaced when dependencies are built.
