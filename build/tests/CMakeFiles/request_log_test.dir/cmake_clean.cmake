file(REMOVE_RECURSE
  "CMakeFiles/request_log_test.dir/request_log_test.cpp.o"
  "CMakeFiles/request_log_test.dir/request_log_test.cpp.o.d"
  "request_log_test"
  "request_log_test.pdb"
  "request_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/request_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
