file(REMOVE_RECURSE
  "CMakeFiles/canary_kvstore.dir/kvstore.cpp.o"
  "CMakeFiles/canary_kvstore.dir/kvstore.cpp.o.d"
  "libcanary_kvstore.a"
  "libcanary_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canary_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
