# Empty compiler generated dependencies file for canary_kvstore.
# This may be replaced when dependencies are built.
