file(REMOVE_RECURSE
  "libcanary_kvstore.a"
)
