file(REMOVE_RECURSE
  "libcanary_common.a"
)
