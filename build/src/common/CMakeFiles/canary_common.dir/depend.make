# Empty dependencies file for canary_common.
# This may be replaced when dependencies are built.
