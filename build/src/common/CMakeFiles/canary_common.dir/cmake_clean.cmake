file(REMOVE_RECURSE
  "CMakeFiles/canary_common.dir/logging.cpp.o"
  "CMakeFiles/canary_common.dir/logging.cpp.o.d"
  "CMakeFiles/canary_common.dir/rng.cpp.o"
  "CMakeFiles/canary_common.dir/rng.cpp.o.d"
  "CMakeFiles/canary_common.dir/stats.cpp.o"
  "CMakeFiles/canary_common.dir/stats.cpp.o.d"
  "CMakeFiles/canary_common.dir/table.cpp.o"
  "CMakeFiles/canary_common.dir/table.cpp.o.d"
  "libcanary_common.a"
  "libcanary_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canary_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
