file(REMOVE_RECURSE
  "CMakeFiles/canary_faas.dir/platform.cpp.o"
  "CMakeFiles/canary_faas.dir/platform.cpp.o.d"
  "CMakeFiles/canary_faas.dir/retry.cpp.o"
  "CMakeFiles/canary_faas.dir/retry.cpp.o.d"
  "CMakeFiles/canary_faas.dir/runtime.cpp.o"
  "CMakeFiles/canary_faas.dir/runtime.cpp.o.d"
  "CMakeFiles/canary_faas.dir/trace.cpp.o"
  "CMakeFiles/canary_faas.dir/trace.cpp.o.d"
  "CMakeFiles/canary_faas.dir/usage.cpp.o"
  "CMakeFiles/canary_faas.dir/usage.cpp.o.d"
  "libcanary_faas.a"
  "libcanary_faas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canary_faas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
