# Empty dependencies file for canary_faas.
# This may be replaced when dependencies are built.
