
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faas/platform.cpp" "src/faas/CMakeFiles/canary_faas.dir/platform.cpp.o" "gcc" "src/faas/CMakeFiles/canary_faas.dir/platform.cpp.o.d"
  "/root/repo/src/faas/retry.cpp" "src/faas/CMakeFiles/canary_faas.dir/retry.cpp.o" "gcc" "src/faas/CMakeFiles/canary_faas.dir/retry.cpp.o.d"
  "/root/repo/src/faas/runtime.cpp" "src/faas/CMakeFiles/canary_faas.dir/runtime.cpp.o" "gcc" "src/faas/CMakeFiles/canary_faas.dir/runtime.cpp.o.d"
  "/root/repo/src/faas/trace.cpp" "src/faas/CMakeFiles/canary_faas.dir/trace.cpp.o" "gcc" "src/faas/CMakeFiles/canary_faas.dir/trace.cpp.o.d"
  "/root/repo/src/faas/usage.cpp" "src/faas/CMakeFiles/canary_faas.dir/usage.cpp.o" "gcc" "src/faas/CMakeFiles/canary_faas.dir/usage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/canary_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/canary_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/canary_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
