file(REMOVE_RECURSE
  "libcanary_faas.a"
)
