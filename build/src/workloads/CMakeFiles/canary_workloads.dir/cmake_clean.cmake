file(REMOVE_RECURSE
  "CMakeFiles/canary_workloads.dir/kernels/census.cpp.o"
  "CMakeFiles/canary_workloads.dir/kernels/census.cpp.o.d"
  "CMakeFiles/canary_workloads.dir/kernels/compress.cpp.o"
  "CMakeFiles/canary_workloads.dir/kernels/compress.cpp.o.d"
  "CMakeFiles/canary_workloads.dir/kernels/graph_bfs.cpp.o"
  "CMakeFiles/canary_workloads.dir/kernels/graph_bfs.cpp.o.d"
  "CMakeFiles/canary_workloads.dir/kernels/mini_dl.cpp.o"
  "CMakeFiles/canary_workloads.dir/kernels/mini_dl.cpp.o.d"
  "CMakeFiles/canary_workloads.dir/kernels/request_log.cpp.o"
  "CMakeFiles/canary_workloads.dir/kernels/request_log.cpp.o.d"
  "CMakeFiles/canary_workloads.dir/workloads.cpp.o"
  "CMakeFiles/canary_workloads.dir/workloads.cpp.o.d"
  "libcanary_workloads.a"
  "libcanary_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canary_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
