file(REMOVE_RECURSE
  "libcanary_workloads.a"
)
