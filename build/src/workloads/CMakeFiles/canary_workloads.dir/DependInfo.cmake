
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/kernels/census.cpp" "src/workloads/CMakeFiles/canary_workloads.dir/kernels/census.cpp.o" "gcc" "src/workloads/CMakeFiles/canary_workloads.dir/kernels/census.cpp.o.d"
  "/root/repo/src/workloads/kernels/compress.cpp" "src/workloads/CMakeFiles/canary_workloads.dir/kernels/compress.cpp.o" "gcc" "src/workloads/CMakeFiles/canary_workloads.dir/kernels/compress.cpp.o.d"
  "/root/repo/src/workloads/kernels/graph_bfs.cpp" "src/workloads/CMakeFiles/canary_workloads.dir/kernels/graph_bfs.cpp.o" "gcc" "src/workloads/CMakeFiles/canary_workloads.dir/kernels/graph_bfs.cpp.o.d"
  "/root/repo/src/workloads/kernels/mini_dl.cpp" "src/workloads/CMakeFiles/canary_workloads.dir/kernels/mini_dl.cpp.o" "gcc" "src/workloads/CMakeFiles/canary_workloads.dir/kernels/mini_dl.cpp.o.d"
  "/root/repo/src/workloads/kernels/request_log.cpp" "src/workloads/CMakeFiles/canary_workloads.dir/kernels/request_log.cpp.o" "gcc" "src/workloads/CMakeFiles/canary_workloads.dir/kernels/request_log.cpp.o.d"
  "/root/repo/src/workloads/workloads.cpp" "src/workloads/CMakeFiles/canary_workloads.dir/workloads.cpp.o" "gcc" "src/workloads/CMakeFiles/canary_workloads.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/canary_common.dir/DependInfo.cmake"
  "/root/repo/build/src/faas/CMakeFiles/canary_faas.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/canary_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/canary_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
