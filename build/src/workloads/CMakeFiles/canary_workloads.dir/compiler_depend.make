# Empty compiler generated dependencies file for canary_workloads.
# This may be replaced when dependencies are built.
