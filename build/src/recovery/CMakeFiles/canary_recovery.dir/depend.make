# Empty dependencies file for canary_recovery.
# This may be replaced when dependencies are built.
