file(REMOVE_RECURSE
  "CMakeFiles/canary_recovery.dir/active_standby.cpp.o"
  "CMakeFiles/canary_recovery.dir/active_standby.cpp.o.d"
  "CMakeFiles/canary_recovery.dir/request_replication.cpp.o"
  "CMakeFiles/canary_recovery.dir/request_replication.cpp.o.d"
  "CMakeFiles/canary_recovery.dir/strategies.cpp.o"
  "CMakeFiles/canary_recovery.dir/strategies.cpp.o.d"
  "libcanary_recovery.a"
  "libcanary_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canary_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
