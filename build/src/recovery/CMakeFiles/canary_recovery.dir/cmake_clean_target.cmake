file(REMOVE_RECURSE
  "libcanary_recovery.a"
)
