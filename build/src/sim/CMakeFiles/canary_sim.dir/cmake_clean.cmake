file(REMOVE_RECURSE
  "CMakeFiles/canary_sim.dir/metrics.cpp.o"
  "CMakeFiles/canary_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/canary_sim.dir/simulator.cpp.o"
  "CMakeFiles/canary_sim.dir/simulator.cpp.o.d"
  "libcanary_sim.a"
  "libcanary_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canary_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
