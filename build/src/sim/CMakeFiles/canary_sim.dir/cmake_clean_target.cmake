file(REMOVE_RECURSE
  "libcanary_sim.a"
)
