# Empty dependencies file for canary_sim.
# This may be replaced when dependencies are built.
