# Empty compiler generated dependencies file for canary_failure.
# This may be replaced when dependencies are built.
