file(REMOVE_RECURSE
  "CMakeFiles/canary_failure.dir/injector.cpp.o"
  "CMakeFiles/canary_failure.dir/injector.cpp.o.d"
  "libcanary_failure.a"
  "libcanary_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canary_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
