file(REMOVE_RECURSE
  "libcanary_failure.a"
)
