file(REMOVE_RECURSE
  "libcanary_cluster.a"
)
