file(REMOVE_RECURSE
  "CMakeFiles/canary_cluster.dir/cluster.cpp.o"
  "CMakeFiles/canary_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/canary_cluster.dir/network.cpp.o"
  "CMakeFiles/canary_cluster.dir/network.cpp.o.d"
  "CMakeFiles/canary_cluster.dir/node.cpp.o"
  "CMakeFiles/canary_cluster.dir/node.cpp.o.d"
  "CMakeFiles/canary_cluster.dir/storage.cpp.o"
  "CMakeFiles/canary_cluster.dir/storage.cpp.o.d"
  "libcanary_cluster.a"
  "libcanary_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canary_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
