# Empty compiler generated dependencies file for canary_cluster.
# This may be replaced when dependencies are built.
