# Empty compiler generated dependencies file for canary_cost.
# This may be replaced when dependencies are built.
