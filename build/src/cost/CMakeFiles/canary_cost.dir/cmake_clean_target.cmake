file(REMOVE_RECURSE
  "libcanary_cost.a"
)
