file(REMOVE_RECURSE
  "CMakeFiles/canary_cost.dir/cost_model.cpp.o"
  "CMakeFiles/canary_cost.dir/cost_model.cpp.o.d"
  "libcanary_cost.a"
  "libcanary_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canary_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
