# Empty compiler generated dependencies file for canary_harness.
# This may be replaced when dependencies are built.
