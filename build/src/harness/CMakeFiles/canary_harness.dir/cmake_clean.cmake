file(REMOVE_RECURSE
  "CMakeFiles/canary_harness.dir/experiment.cpp.o"
  "CMakeFiles/canary_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/canary_harness.dir/scenario.cpp.o"
  "CMakeFiles/canary_harness.dir/scenario.cpp.o.d"
  "libcanary_harness.a"
  "libcanary_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canary_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
