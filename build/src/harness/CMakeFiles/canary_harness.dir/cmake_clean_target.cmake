file(REMOVE_RECURSE
  "libcanary_harness.a"
)
