# Empty dependencies file for canary_core.
# This may be replaced when dependencies are built.
