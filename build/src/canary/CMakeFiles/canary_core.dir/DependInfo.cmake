
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/canary/checkpointing.cpp" "src/canary/CMakeFiles/canary_core.dir/checkpointing.cpp.o" "gcc" "src/canary/CMakeFiles/canary_core.dir/checkpointing.cpp.o.d"
  "/root/repo/src/canary/client.cpp" "src/canary/CMakeFiles/canary_core.dir/client.cpp.o" "gcc" "src/canary/CMakeFiles/canary_core.dir/client.cpp.o.d"
  "/root/repo/src/canary/core.cpp" "src/canary/CMakeFiles/canary_core.dir/core.cpp.o" "gcc" "src/canary/CMakeFiles/canary_core.dir/core.cpp.o.d"
  "/root/repo/src/canary/metadata.cpp" "src/canary/CMakeFiles/canary_core.dir/metadata.cpp.o" "gcc" "src/canary/CMakeFiles/canary_core.dir/metadata.cpp.o.d"
  "/root/repo/src/canary/proactive.cpp" "src/canary/CMakeFiles/canary_core.dir/proactive.cpp.o" "gcc" "src/canary/CMakeFiles/canary_core.dir/proactive.cpp.o.d"
  "/root/repo/src/canary/replication.cpp" "src/canary/CMakeFiles/canary_core.dir/replication.cpp.o" "gcc" "src/canary/CMakeFiles/canary_core.dir/replication.cpp.o.d"
  "/root/repo/src/canary/request_validator.cpp" "src/canary/CMakeFiles/canary_core.dir/request_validator.cpp.o" "gcc" "src/canary/CMakeFiles/canary_core.dir/request_validator.cpp.o.d"
  "/root/repo/src/canary/runtime_manager.cpp" "src/canary/CMakeFiles/canary_core.dir/runtime_manager.cpp.o" "gcc" "src/canary/CMakeFiles/canary_core.dir/runtime_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/canary_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/canary_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/canary_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/canary_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/faas/CMakeFiles/canary_faas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
