file(REMOVE_RECURSE
  "CMakeFiles/canary_core.dir/checkpointing.cpp.o"
  "CMakeFiles/canary_core.dir/checkpointing.cpp.o.d"
  "CMakeFiles/canary_core.dir/client.cpp.o"
  "CMakeFiles/canary_core.dir/client.cpp.o.d"
  "CMakeFiles/canary_core.dir/core.cpp.o"
  "CMakeFiles/canary_core.dir/core.cpp.o.d"
  "CMakeFiles/canary_core.dir/metadata.cpp.o"
  "CMakeFiles/canary_core.dir/metadata.cpp.o.d"
  "CMakeFiles/canary_core.dir/proactive.cpp.o"
  "CMakeFiles/canary_core.dir/proactive.cpp.o.d"
  "CMakeFiles/canary_core.dir/replication.cpp.o"
  "CMakeFiles/canary_core.dir/replication.cpp.o.d"
  "CMakeFiles/canary_core.dir/request_validator.cpp.o"
  "CMakeFiles/canary_core.dir/request_validator.cpp.o.d"
  "CMakeFiles/canary_core.dir/runtime_manager.cpp.o"
  "CMakeFiles/canary_core.dir/runtime_manager.cpp.o.d"
  "libcanary_core.a"
  "libcanary_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canary_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
