file(REMOVE_RECURSE
  "libcanary_core.a"
)
