file(REMOVE_RECURSE
  "CMakeFiles/ablation_spill_threshold.dir/ablation_spill_threshold.cpp.o"
  "CMakeFiles/ablation_spill_threshold.dir/ablation_spill_threshold.cpp.o.d"
  "ablation_spill_threshold"
  "ablation_spill_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spill_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
