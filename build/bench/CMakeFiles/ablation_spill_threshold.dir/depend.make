# Empty dependencies file for ablation_spill_threshold.
# This may be replaced when dependencies are built.
