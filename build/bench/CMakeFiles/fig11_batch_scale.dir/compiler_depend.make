# Empty compiler generated dependencies file for fig11_batch_scale.
# This may be replaced when dependencies are built.
