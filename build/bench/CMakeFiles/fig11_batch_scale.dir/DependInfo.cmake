
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_batch_scale.cpp" "bench/CMakeFiles/fig11_batch_scale.dir/fig11_batch_scale.cpp.o" "gcc" "bench/CMakeFiles/fig11_batch_scale.dir/fig11_batch_scale.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/canary_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/canary_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/canary_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/canary_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/canary/CMakeFiles/canary_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/canary_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/canary_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/faas/CMakeFiles/canary_faas.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/canary_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/canary_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/canary_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
