file(REMOVE_RECURSE
  "CMakeFiles/ablation_proactive.dir/ablation_proactive.cpp.o"
  "CMakeFiles/ablation_proactive.dir/ablation_proactive.cpp.o.d"
  "ablation_proactive"
  "ablation_proactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_proactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
