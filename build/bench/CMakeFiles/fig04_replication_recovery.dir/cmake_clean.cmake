file(REMOVE_RECURSE
  "CMakeFiles/fig04_replication_recovery.dir/fig04_replication_recovery.cpp.o"
  "CMakeFiles/fig04_replication_recovery.dir/fig04_replication_recovery.cpp.o.d"
  "fig04_replication_recovery"
  "fig04_replication_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_replication_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
