# Empty dependencies file for fig04_replication_recovery.
# This may be replaced when dependencies are built.
