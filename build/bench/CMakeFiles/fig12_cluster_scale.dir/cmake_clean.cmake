file(REMOVE_RECURSE
  "CMakeFiles/fig12_cluster_scale.dir/fig12_cluster_scale.cpp.o"
  "CMakeFiles/fig12_cluster_scale.dir/fig12_cluster_scale.cpp.o.d"
  "fig12_cluster_scale"
  "fig12_cluster_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cluster_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
