# Empty compiler generated dependencies file for fig12_cluster_scale.
# This may be replaced when dependencies are built.
