file(REMOVE_RECURSE
  "CMakeFiles/fig07_makespan_dl.dir/fig07_makespan_dl.cpp.o"
  "CMakeFiles/fig07_makespan_dl.dir/fig07_makespan_dl.cpp.o.d"
  "fig07_makespan_dl"
  "fig07_makespan_dl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_makespan_dl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
