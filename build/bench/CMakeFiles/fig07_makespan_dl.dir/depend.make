# Empty dependencies file for fig07_makespan_dl.
# This may be replaced when dependencies are built.
