file(REMOVE_RECURSE
  "CMakeFiles/ablation_retention.dir/ablation_retention.cpp.o"
  "CMakeFiles/ablation_retention.dir/ablation_retention.cpp.o.d"
  "ablation_retention"
  "ablation_retention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
