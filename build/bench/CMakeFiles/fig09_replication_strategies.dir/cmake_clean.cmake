file(REMOVE_RECURSE
  "CMakeFiles/fig09_replication_strategies.dir/fig09_replication_strategies.cpp.o"
  "CMakeFiles/fig09_replication_strategies.dir/fig09_replication_strategies.cpp.o.d"
  "fig09_replication_strategies"
  "fig09_replication_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_replication_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
