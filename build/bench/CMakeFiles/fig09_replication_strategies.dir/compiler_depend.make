# Empty compiler generated dependencies file for fig09_replication_strategies.
# This may be replaced when dependencies are built.
