# Empty compiler generated dependencies file for fig10_sota_comparison.
# This may be replaced when dependencies are built.
