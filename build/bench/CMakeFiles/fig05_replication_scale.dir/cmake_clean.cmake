file(REMOVE_RECURSE
  "CMakeFiles/fig05_replication_scale.dir/fig05_replication_scale.cpp.o"
  "CMakeFiles/fig05_replication_scale.dir/fig05_replication_scale.cpp.o.d"
  "fig05_replication_scale"
  "fig05_replication_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_replication_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
