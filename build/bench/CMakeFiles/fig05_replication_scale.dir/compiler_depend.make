# Empty compiler generated dependencies file for fig05_replication_scale.
# This may be replaced when dependencies are built.
