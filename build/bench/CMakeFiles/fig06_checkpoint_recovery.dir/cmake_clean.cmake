file(REMOVE_RECURSE
  "CMakeFiles/fig06_checkpoint_recovery.dir/fig06_checkpoint_recovery.cpp.o"
  "CMakeFiles/fig06_checkpoint_recovery.dir/fig06_checkpoint_recovery.cpp.o.d"
  "fig06_checkpoint_recovery"
  "fig06_checkpoint_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_checkpoint_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
