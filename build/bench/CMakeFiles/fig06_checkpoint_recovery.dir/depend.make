# Empty dependencies file for fig06_checkpoint_recovery.
# This may be replaced when dependencies are built.
