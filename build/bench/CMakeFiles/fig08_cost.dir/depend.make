# Empty dependencies file for fig08_cost.
# This may be replaced when dependencies are built.
