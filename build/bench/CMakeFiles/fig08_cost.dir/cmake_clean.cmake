file(REMOVE_RECURSE
  "CMakeFiles/fig08_cost.dir/fig08_cost.cpp.o"
  "CMakeFiles/fig08_cost.dir/fig08_cost.cpp.o.d"
  "fig08_cost"
  "fig08_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
