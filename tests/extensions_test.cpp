// Tests for the future-work extensions (paper §VII): proactive failure
// prediction/mitigation and SLA-aware recovery.
#include <gtest/gtest.h>

#include <optional>

#include "canary/core.hpp"
#include "canary/proactive.hpp"
#include "cluster/network.hpp"
#include "harness/experiment.hpp"
#include "workloads/workloads.hpp"

namespace canary::core {
namespace {

// ---- ProactiveMitigator unit tests ----------------------------------------

class MitigatorTest : public ::testing::Test {
 protected:
  ProactiveConfig enabled_config() {
    ProactiveConfig config;
    config.enabled = true;
    config.suspect_threshold = 3;
    config.window = Duration::sec(10.0);
    config.prescale_factor = 1.5;
    return config;
  }
  sim::Simulator sim_;
};

TEST_F(MitigatorTest, DisabledNeverSuspects) {
  ProactiveMitigator mitigator(sim_, ProactiveConfig{});
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(mitigator.observe_failure(NodeId{1}));
  }
  EXPECT_FALSE(mitigator.is_suspect(NodeId{1}));
  EXPECT_DOUBLE_EQ(mitigator.replica_boost(), 1.0);
}

TEST_F(MitigatorTest, ThresholdMarksSuspect) {
  ProactiveMitigator mitigator(sim_, enabled_config());
  EXPECT_FALSE(mitigator.observe_failure(NodeId{1}));
  EXPECT_FALSE(mitigator.observe_failure(NodeId{1}));
  EXPECT_TRUE(mitigator.observe_failure(NodeId{1}));  // newly suspect
  EXPECT_FALSE(mitigator.observe_failure(NodeId{1}));  // already suspect
  EXPECT_TRUE(mitigator.is_suspect(NodeId{1}));
  EXPECT_FALSE(mitigator.is_suspect(NodeId{2}));
  EXPECT_TRUE(mitigator.any_suspect());
  EXPECT_EQ(mitigator.suspects(), std::vector<NodeId>{NodeId{1}});
  EXPECT_DOUBLE_EQ(mitigator.replica_boost(), 1.5);
}

TEST_F(MitigatorTest, FailuresOnDifferentNodesDoNotAccumulate) {
  ProactiveMitigator mitigator(sim_, enabled_config());
  mitigator.observe_failure(NodeId{1});
  mitigator.observe_failure(NodeId{2});
  mitigator.observe_failure(NodeId{3});
  EXPECT_FALSE(mitigator.any_suspect());
}

TEST_F(MitigatorTest, WindowExpiresOldObservations) {
  ProactiveMitigator mitigator(sim_, enabled_config());
  mitigator.observe_failure(NodeId{1});
  mitigator.observe_failure(NodeId{1});
  // Advance past the window; the old observations no longer count.
  sim_.schedule_after(Duration::sec(15.0), [] {});
  sim_.run();
  EXPECT_FALSE(mitigator.observe_failure(NodeId{1}));
  EXPECT_FALSE(mitigator.is_suspect(NodeId{1}));
}

// ---- end-to-end: proactive mitigation under correlated node failure -------

harness::ScenarioConfig correlated_scenario(bool proactive) {
  harness::ScenarioConfig config;
  config.strategy = recovery::StrategyConfig::canary_full();
  config.strategy.canary.proactive.enabled = proactive;
  config.strategy.canary.proactive.suspect_threshold = 2;
  config.error_rate = 0.05;
  config.cluster_nodes = 8;
  config.seed = 9;
  harness::ScenarioConfig::CorrelatedNodeFailure failure;
  failure.at = Duration::sec(14.0);
  failure.precursor_kills = 4;
  failure.precursor_window = Duration::sec(8.0);
  config.correlated_node_failures = {failure};
  return config;
}

TEST(ProactiveEndToEndTest, SuspectIsMarkedBeforeNodeDies) {
  const std::vector<faas::JobSpec> jobs = {
      workloads::make_job(workloads::WorkloadKind::kWebService, 40)};
  const auto result =
      harness::ScenarioRunner::run(correlated_scenario(true), jobs);
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.counters.at("nodes_marked_suspect"), 1.0);
  EXPECT_GE(result.counters.at("node_failures"), 1.0);
}

TEST(ProactiveEndToEndTest, MitigationDoesNotHurtCompletion) {
  const std::vector<faas::JobSpec> jobs = {
      workloads::make_job(workloads::WorkloadKind::kWebService, 40)};
  const auto off = harness::run_repetitions(correlated_scenario(false), jobs, 3);
  const auto on = harness::run_repetitions(correlated_scenario(true), jobs, 3);
  EXPECT_EQ(off.incomplete_runs, 0u);
  EXPECT_EQ(on.incomplete_runs, 0u);
  // Pre-scaled replicas and suspect-avoiding placement must not regress
  // recovery; typically they improve it.
  EXPECT_LE(on.total_recovery_s.mean(), off.total_recovery_s.mean() * 1.15);
}

// ---- SLA-aware recovery -----------------------------------------------------

std::vector<cluster::NodeSpec> uniform_nodes(std::size_t n) {
  std::vector<cluster::NodeSpec> specs(n);
  for (auto& s : specs) s.cpu = cluster::CpuClass::kXeonGold6242;
  return specs;
}

TEST(SlaRecoveryTest, UrgentFunctionClaimsLaunchingReplica) {
  sim::Simulator sim;
  auto cluster = cluster::Cluster(uniform_nodes(4));
  cluster::NetworkModel network(&cluster, {});
  auto storage = cluster::StorageHierarchy::testbed();
  kv::KvStore store(kv::KvConfig{}, cluster.node_ids());
  obs::MetricRegistry metrics;
  faas::PlatformConfig pconfig;
  pconfig.scheduler_overhead = Duration::zero();
  faas::Platform platform(sim, cluster, network, pconfig, metrics);

  CanaryConfig config;
  config.sla_aware = true;
  CoreModule core(platform, store, storage, config);
  core.install();

  // DL runtime: replicas need ~7.4s to warm up. Kill the function early,
  // while the pool replica is still initializing.
  faas::JobSpec job;
  // Clean run finishes at ~28.4s; a cold-restart recovery lands at ~31s,
  // a promised-replica recovery at ~29s. The 30s deadline makes the
  // function urgent and the promise path the only way to hold the SLA.
  job.sla = Duration::sec(30.0);
  faas::FunctionSpec fn;
  fn.name = "urgent";
  fn.runtime = faas::RuntimeImage::kDlTrain;
  for (int i = 0; i < 8; ++i) {
    fn.states.push_back({Duration::sec(2.5), Bytes::kib(64)});
  }
  fn.finalize = Duration::sec(1.0);
  job.functions.push_back(fn);
  const auto id = core.submit_job(job);
  ASSERT_TRUE(id.ok());
  const FunctionId victim = platform.job_functions(id.value()).front();

  // Kill at 3s: past the promise-eligibility age of the pool replica
  // (a third of the DL image's 7.4s startup) but well before it is warm.
  sim.schedule_after(Duration::sec(3.0), [&] {
    platform.kill_function(victim, faas::FailureKind::kContainerKill);
  });
  sim.run();

  EXPECT_TRUE(platform.job_completed(id.value()));
  EXPECT_EQ(metrics.counter("sla_promised_recoveries"), 1.0);
  EXPECT_EQ(metrics.counter("sla_promised_dispatches"), 1.0);
  EXPECT_EQ(metrics.counter("cold_fallback_recoveries"), 0.0);
}

TEST(SlaRecoveryTest, NonSlaJobFallsBackCold) {
  sim::Simulator sim;
  auto cluster = cluster::Cluster(uniform_nodes(4));
  cluster::NetworkModel network(&cluster, {});
  auto storage = cluster::StorageHierarchy::testbed();
  kv::KvStore store(kv::KvConfig{}, cluster.node_ids());
  obs::MetricRegistry metrics;
  faas::PlatformConfig pconfig;
  pconfig.scheduler_overhead = Duration::zero();
  faas::Platform platform(sim, cluster, network, pconfig, metrics);

  CanaryConfig config;
  config.sla_aware = true;  // feature on, but the job carries no SLA
  CoreModule core(platform, store, storage, config);
  core.install();

  faas::JobSpec job;
  faas::FunctionSpec fn;
  fn.name = "besteffort";
  fn.runtime = faas::RuntimeImage::kDlTrain;
  for (int i = 0; i < 8; ++i) {
    fn.states.push_back({Duration::sec(2.5), Bytes::kib(64)});
  }
  job.functions.push_back(fn);
  const auto id = core.submit_job(job);
  ASSERT_TRUE(id.ok());
  const FunctionId victim = platform.job_functions(id.value()).front();
  sim.schedule_after(Duration::sec(2.0), [&] {
    platform.kill_function(victim, faas::FailureKind::kContainerKill);
  });
  sim.run();
  EXPECT_TRUE(platform.job_completed(id.value()));
  EXPECT_EQ(metrics.counter("sla_promised_recoveries"), 0.0);
  EXPECT_EQ(metrics.counter("cold_fallback_recoveries"), 1.0);
}

TEST(SlaRecoveryTest, ViolationsCountedInRunResult) {
  auto jobs = std::vector<faas::JobSpec>{
      workloads::make_job(workloads::WorkloadKind::kWebService, 10)};
  jobs.front().sla = Duration::sec(1.0);  // impossible deadline
  harness::ScenarioConfig config;
  config.strategy = recovery::StrategyConfig::canary_full();
  config.error_rate = 0.0;
  config.cluster_nodes = 4;
  const auto result = harness::ScenarioRunner::run(config, jobs);
  EXPECT_EQ(result.sla_jobs, 1.0);
  EXPECT_EQ(result.sla_violations, 1.0);

  jobs.front().sla = Duration::sec(10000.0);  // generous deadline
  const auto relaxed = harness::ScenarioRunner::run(config, jobs);
  EXPECT_EQ(relaxed.sla_violations, 0.0);
}

TEST(SlaRecoveryTest, SlaAwareReducesViolationsUnderPressure) {
  // Tight deadlines + DL runtime (expensive cold start) + failures: the
  // promised-replica path should not lose to cold fallback.
  std::vector<faas::JobSpec> jobs;
  for (int j = 0; j < 6; ++j) {
    auto job = workloads::make_job(workloads::WorkloadKind::kDlTraining, 4,
                                   "sla-job-" + std::to_string(j));
    job.sla = Duration::sec(55.0);
    jobs.push_back(std::move(job));
  }
  auto run = [&](bool sla_aware) {
    harness::ScenarioConfig config;
    config.strategy = recovery::StrategyConfig::canary_full(
        core::ReplicationMode::kLenient);  // scarce replicas
    config.strategy.canary.sla_aware = sla_aware;
    config.error_rate = 0.35;
    config.cluster_nodes = 8;
    config.seed = 21;
    return harness::run_repetitions(config, jobs, 5);
  };
  const auto off = run(false);
  const auto on = run(true);
  EXPECT_EQ(on.incomplete_runs, 0u);
  EXPECT_LE(on.sla_violations.mean(), off.sla_violations.mean());
}

}  // namespace
}  // namespace canary::core
