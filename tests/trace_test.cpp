// Tests for the execution trace observer.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>

#include "cluster/network.hpp"
#include "faas/platform.hpp"
#include "faas/retry.hpp"
#include "faas/trace.hpp"

namespace canary::faas {
namespace {

std::vector<cluster::NodeSpec> uniform_nodes(std::size_t n) {
  std::vector<cluster::NodeSpec> specs(n);
  for (auto& s : specs) s.cpu = cluster::CpuClass::kXeonGold6242;
  return specs;
}

FunctionSpec one_state_fn() {
  FunctionSpec fn;
  fn.name = "f";
  fn.states.push_back({Duration::sec(1.0), {}});
  return fn;
}

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : cluster_(uniform_nodes(2)), network_(&cluster_, {}) {
    PlatformConfig config;
    config.scheduler_overhead = Duration::zero();
    platform_.emplace(sim_, cluster_, network_, config, metrics_);
    retry_.emplace(*platform_);
    platform_->set_recovery_handler(&*retry_);
    trace_.emplace(sim_);
    platform_->add_observer(&*trace_);
  }

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::NetworkModel network_;
  obs::MetricRegistry metrics_;
  std::optional<Platform> platform_;
  std::optional<RetryHandler> retry_;
  std::optional<TraceLog> trace_;
};

TEST_F(TraceTest, CleanRunProducesLifecycleEvents) {
  JobSpec job;
  job.functions.push_back(one_state_fn());
  const auto id = platform_->submit_job(job);
  ASSERT_TRUE(id.ok());
  sim_.run();

  EXPECT_EQ(trace_->count(TraceEventKind::kJobSubmitted), 1u);
  EXPECT_EQ(trace_->count(TraceEventKind::kAttemptStarted), 1u);
  EXPECT_EQ(trace_->count(TraceEventKind::kFunctionCompleted), 1u);
  EXPECT_EQ(trace_->count(TraceEventKind::kJobCompleted), 1u);
  EXPECT_EQ(trace_->count(TraceEventKind::kFunctionFailed), 0u);
  EXPECT_EQ(trace_->count(TraceEventKind::kContainerDestroyed), 1u);

  // Events are in causal (time) order.
  const auto& events = trace_->events();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].when, events[i - 1].when);
  }
}

TEST_F(TraceTest, FailureAppearsWithCauseAndAttempt) {
  JobSpec job;
  job.functions.push_back(one_state_fn());
  const auto id = platform_->submit_job(job);
  ASSERT_TRUE(id.ok());
  const FunctionId fn = platform_->job_functions(id.value()).front();
  sim_.schedule_after(Duration::sec(1.0), [&] {
    platform_->kill_function(fn, FailureKind::kContainerKill);
  });
  sim_.run();

  EXPECT_EQ(trace_->count(TraceEventKind::kFunctionFailed), 1u);
  EXPECT_EQ(trace_->count(TraceEventKind::kAttemptStarted), 2u);
  const auto history = trace_->history_of(fn);
  ASSERT_GE(history.size(), 4u);  // start, fail, start, complete
  bool saw_failure = false;
  for (const auto& event : history) {
    if (event.kind == TraceEventKind::kFunctionFailed) {
      saw_failure = true;
      EXPECT_EQ(event.attempt, 1);
      EXPECT_EQ(event.failure, FailureKind::kContainerKill);
    }
  }
  EXPECT_TRUE(saw_failure);
}

TEST_F(TraceTest, CapacityBoundDropsOldest) {
  TraceLog small(sim_, /*capacity=*/3);
  platform_->add_observer(&small);
  JobSpec job;
  for (int i = 0; i < 4; ++i) job.functions.push_back(one_state_fn());
  ASSERT_TRUE(platform_->submit_job(job).ok());
  sim_.run();
  EXPECT_EQ(small.size(), 3u);
  EXPECT_GT(small.dropped(), 0u);
}

TEST_F(TraceTest, FormatAndDumpAreReadable) {
  JobSpec job;
  job.functions.push_back(one_state_fn());
  ASSERT_TRUE(platform_->submit_job(job).ok());
  sim_.run();
  std::ostringstream oss;
  trace_->dump(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("job-submitted"), std::string::npos);
  EXPECT_NE(out.find("function-completed"), std::string::npos);
  EXPECT_NE(out.find("attempt=1"), std::string::npos);
}

TEST_F(TraceTest, ClearResets) {
  JobSpec job;
  job.functions.push_back(one_state_fn());
  ASSERT_TRUE(platform_->submit_job(job).ok());
  sim_.run();
  EXPECT_GT(trace_->size(), 0u);
  trace_->clear();
  EXPECT_EQ(trace_->size(), 0u);
  EXPECT_EQ(trace_->dropped(), 0u);
}

}  // namespace
}  // namespace canary::faas
