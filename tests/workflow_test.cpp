// Tests for trigger-driven workflows: dependency validation, MapReduce
// and pipeline ordering, and failure recovery across stages.
#include <gtest/gtest.h>

#include <optional>

#include "cluster/network.hpp"
#include "faas/platform.hpp"
#include "faas/retry.hpp"
#include "harness/experiment.hpp"
#include "workloads/workloads.hpp"

namespace canary {
namespace {

std::vector<cluster::NodeSpec> uniform_nodes(std::size_t n) {
  std::vector<cluster::NodeSpec> specs(n);
  for (auto& s : specs) s.cpu = cluster::CpuClass::kXeonGold6242;
  return specs;
}

faas::FunctionSpec step_fn(const std::string& name,
                           std::vector<std::size_t> deps = {}) {
  faas::FunctionSpec fn;
  fn.name = name;
  fn.runtime = faas::RuntimeImage::kPython3;
  fn.states.push_back({Duration::sec(1.0), {}});
  fn.depends_on = std::move(deps);
  return fn;
}

class WorkflowTest : public ::testing::Test {
 protected:
  WorkflowTest() : cluster_(uniform_nodes(4)), network_(&cluster_, {}) {
    faas::PlatformConfig config;
    config.scheduler_overhead = Duration::zero();
    platform_.emplace(sim_, cluster_, network_, config, metrics_);
    retry_.emplace(*platform_);
    platform_->set_recovery_handler(&*retry_);
  }

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::NetworkModel network_;
  obs::MetricRegistry metrics_;
  std::optional<faas::Platform> platform_;
  std::optional<faas::RetryHandler> retry_;
};

TEST_F(WorkflowTest, CycleIsRejected) {
  faas::JobSpec job;
  job.functions.push_back(step_fn("a", {1}));
  job.functions.push_back(step_fn("b", {0}));
  const auto result = platform_->submit_job(job);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidArgument);
}

TEST_F(WorkflowTest, SelfDependencyIsRejected) {
  faas::JobSpec job;
  job.functions.push_back(step_fn("a", {0}));
  EXPECT_FALSE(platform_->submit_job(job).ok());
}

TEST_F(WorkflowTest, OutOfRangeDependencyIsRejected) {
  faas::JobSpec job;
  job.functions.push_back(step_fn("a", {7}));
  EXPECT_FALSE(platform_->submit_job(job).ok());
}

TEST_F(WorkflowTest, DependentWaitsForTrigger) {
  faas::JobSpec job;
  job.functions.push_back(step_fn("up"));
  job.functions.push_back(step_fn("down", {0}));
  const auto id = platform_->submit_job(job);
  ASSERT_TRUE(id.ok());
  sim_.run();
  const auto& up = platform_->invocation(platform_->job_functions(id.value())[0]);
  const auto& down =
      platform_->invocation(platform_->job_functions(id.value())[1]);
  EXPECT_TRUE(up.completed());
  EXPECT_TRUE(down.completed());
  // The dependent's first dispatch strictly follows the trigger.
  EXPECT_GE(down.first_dispatch_time, up.completion_time);
  EXPECT_TRUE(platform_->job_completed(id.value()));
}

TEST_F(WorkflowTest, DiamondDependencyOrder) {
  faas::JobSpec job;
  job.functions.push_back(step_fn("src"));
  job.functions.push_back(step_fn("left", {0}));
  job.functions.push_back(step_fn("right", {0}));
  job.functions.push_back(step_fn("sink", {1, 2}));
  const auto id = platform_->submit_job(job);
  ASSERT_TRUE(id.ok());
  sim_.run();
  const auto& fns = platform_->job_functions(id.value());
  const auto& left = platform_->invocation(fns[1]);
  const auto& right = platform_->invocation(fns[2]);
  const auto& sink = platform_->invocation(fns[3]);
  EXPECT_GE(sink.first_dispatch_time,
            std::max(left.completion_time, right.completion_time));
  EXPECT_TRUE(platform_->job_completed(id.value()));
}

TEST_F(WorkflowTest, MapReduceOrderingHolds) {
  const auto job = workloads::make_mapreduce_job(6, 2);
  const auto id = platform_->submit_job(job);
  ASSERT_TRUE(id.ok());
  sim_.run();
  ASSERT_TRUE(platform_->job_completed(id.value()));
  const auto& fns = platform_->job_functions(id.value());
  TimePoint last_mapper = TimePoint::origin();
  for (std::size_t m = 0; m < 6; ++m) {
    last_mapper =
        std::max(last_mapper, platform_->invocation(fns[m]).completion_time);
  }
  for (std::size_t r = 6; r < 8; ++r) {
    EXPECT_GE(platform_->invocation(fns[r]).first_dispatch_time, last_mapper);
  }
}

TEST_F(WorkflowTest, UpstreamFailureDelaysDownstream) {
  class KillFirstMapper : public faas::FailurePolicy {
   public:
    std::optional<Duration> plan_kill(const faas::Invocation& inv, int attempt,
                                      Duration) override {
      if (inv.spec->name == "map-0" && attempt == 1) return Duration::sec(3.0);
      return std::nullopt;
    }
  } policy;
  platform_->set_failure_policy(&policy);

  const auto clean = [&] {
    // Reference run without failures in a fresh fixture.
    sim::Simulator sim;
    auto cluster = cluster::Cluster(uniform_nodes(4));
    cluster::NetworkModel network(&cluster, {});
    obs::MetricRegistry metrics;
    faas::PlatformConfig config;
    config.scheduler_overhead = Duration::zero();
    faas::Platform platform(sim, cluster, network, config, metrics);
    faas::RetryHandler retry(platform);
    platform.set_recovery_handler(&retry);
    const auto id = platform.submit_job(workloads::make_mapreduce_job(4, 2));
    sim.run();
    return platform.job_completion_time(id.value());
  }();

  const auto id = platform_->submit_job(workloads::make_mapreduce_job(4, 2));
  ASSERT_TRUE(id.ok());
  sim_.run();
  ASSERT_TRUE(platform_->job_completed(id.value()));
  // The failed mapper pushed the whole reduce stage out.
  EXPECT_GT(platform_->job_completion_time(id.value()), clean);
}

TEST_F(WorkflowTest, PipelineBuilderShape) {
  const auto job = workloads::make_pipeline_job(3, 2);
  ASSERT_EQ(job.functions.size(), 6u);
  EXPECT_TRUE(job.functions[0].depends_on.empty());
  EXPECT_EQ(job.functions[2].depends_on, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(job.functions[5].depends_on, (std::vector<std::size_t>{2, 3}));
}

TEST_F(WorkflowTest, PipelineRunsStageByStage) {
  const auto id = platform_->submit_job(workloads::make_pipeline_job(3, 2));
  ASSERT_TRUE(id.ok());
  sim_.run();
  ASSERT_TRUE(platform_->job_completed(id.value()));
  const auto& fns = platform_->job_functions(id.value());
  for (std::size_t stage = 1; stage < 3; ++stage) {
    TimePoint prev_done = TimePoint::origin();
    for (std::size_t w = 0; w < 2; ++w) {
      prev_done = std::max(
          prev_done,
          platform_->invocation(fns[(stage - 1) * 2 + w]).completion_time);
    }
    for (std::size_t w = 0; w < 2; ++w) {
      EXPECT_GE(platform_->invocation(fns[stage * 2 + w]).first_dispatch_time,
                prev_done);
    }
  }
}

TEST(WorkflowHarnessTest, CanaryRecoversMapReduceFasterThanRetry) {
  const std::vector<faas::JobSpec> jobs = {workloads::make_mapreduce_job(20, 5)};
  auto run = [&](recovery::StrategyConfig strategy) {
    harness::ScenarioConfig config;
    config.strategy = strategy;
    config.error_rate = 0.3;
    config.cluster_nodes = 8;
    config.seed = 31;
    return harness::run_repetitions(config, jobs, 3);
  };
  const auto retry = run(recovery::StrategyConfig::retry());
  const auto canary = run(recovery::StrategyConfig::canary_full());
  EXPECT_EQ(retry.incomplete_runs, 0u);
  EXPECT_EQ(canary.incomplete_runs, 0u);
  EXPECT_LT(canary.total_recovery_s.mean(), retry.total_recovery_s.mean());
  EXPECT_LT(canary.makespan_s.mean(), retry.makespan_s.mean());
}

}  // namespace
}  // namespace canary
