// Byte-level determinism: the same scenario run twice in the same
// process must produce byte-identical run_report v2 JSON and
// byte-identical chrome-trace output. This is the property the figure
// pipeline (and CI's cross-run `cmp`) relies on, asserted here without
// touching the filesystem so it also runs under sanitizers cheaply.
//
// In-process repetition is the stricter variant of CI's two-process
// check: it additionally catches state leaking between runs through
// globals, statics, or allocator-address-dependent ordering.
#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/scenario.hpp"
#include "obs/chrome_trace.hpp"
#include "realexec/backend.hpp"
#include "recovery/strategies.hpp"
#include "workloads/workloads.hpp"

namespace canary {
namespace {

harness::ScenarioConfig scenario_under_test() {
  harness::ScenarioConfig config;
  config.strategy = recovery::StrategyConfig::canary_full();
  config.error_rate = 0.15;
  config.cluster_nodes = 8;
  config.seed = 20220101;
  config.node_failure_offsets.push_back(Duration::sec(5.0));
  config.record_spans = true;
  config.record_events = true;
  return config;
}

std::vector<faas::JobSpec> jobs_under_test() {
  std::vector<faas::JobSpec> jobs;
  jobs.push_back(workloads::make_mixed_batch(12));
  jobs.push_back(workloads::make_mapreduce_job(4, 2));
  return jobs;
}

std::string render_report(const harness::Aggregate& agg) {
  obs::RunReport report =
      harness::make_report("determinism_probe", scenario_under_test(), agg);
  return report.to_json();
}

std::string render_trace(const harness::RunResult& result) {
  std::ostringstream out;
  obs::write_chrome_trace(out, result.spans.get(), result.events.get());
  return out.str();
}

TEST(DeterminismTest, RunReportJsonIsByteIdenticalAcrossRuns) {
  const harness::ScenarioConfig config = scenario_under_test();
  const std::vector<faas::JobSpec> jobs = jobs_under_test();

  const std::string first =
      render_report(harness::run_repetitions(config, jobs, 3));
  const std::string second =
      render_report(harness::run_repetitions(config, jobs, 3));

  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "run_report v2 JSON diverged between runs";
  EXPECT_NE(first.find("canary.run_report/v2"), std::string::npos);
}

TEST(DeterminismTest, ChromeTraceIsByteIdenticalAcrossRuns) {
  const harness::ScenarioConfig config = scenario_under_test();
  const std::vector<faas::JobSpec> jobs = jobs_under_test();

  const harness::RunResult a = harness::ScenarioRunner::run(config, jobs);
  const harness::RunResult b = harness::ScenarioRunner::run(config, jobs);

  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  ASSERT_NE(a.spans, nullptr);
  ASSERT_NE(a.events, nullptr);

  const std::string trace_a = render_trace(a);
  const std::string trace_b = render_trace(b);
  ASSERT_FALSE(trace_a.empty());
  EXPECT_EQ(trace_a, trace_b) << "chrome trace diverged between runs";
}

TEST(DeterminismTest, AttributionSectionsAreByteIdenticalAcrossRuns) {
  // The v3 sections (tail + timeseries) must be as deterministic as the
  // rest of the report: exemplar reservoirs are seeded, repetition merge
  // is associative, and window rollups key off sim time only.
  harness::ScenarioConfig config = scenario_under_test();
  config.tail.enabled = true;
  config.timeseries.enabled = true;
  const std::vector<faas::JobSpec> jobs = jobs_under_test();

  const std::string first =
      render_report(harness::run_repetitions(config, jobs, 3));
  const std::string second =
      render_report(harness::run_repetitions(config, jobs, 3));

  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "v3 report JSON diverged between runs";
  EXPECT_NE(first.find("canary.run_report/v3"), std::string::npos);
  EXPECT_NE(first.find("\"tail\""), std::string::npos);
  EXPECT_NE(first.find("\"timeseries\""), std::string::npos);
}

TEST(DeterminismTest, AttributionOffKeepsArtifactsByteIdentical) {
  // The attribution layer's contract: when disabled (the default), the
  // report is tagged v2, carries neither new section, and the chrome
  // trace has no counter track — nothing a pre-attribution build would
  // not also emit.
  const harness::ScenarioConfig config = scenario_under_test();
  const std::vector<faas::JobSpec> jobs = jobs_under_test();

  const std::string report =
      render_report(harness::run_repetitions(config, jobs, 2));
  EXPECT_NE(report.find("canary.run_report/v2"), std::string::npos);
  EXPECT_EQ(report.find("\"tail\""), std::string::npos);
  EXPECT_EQ(report.find("\"timeseries\""), std::string::npos);
  EXPECT_EQ(report.find("dropped_by_kind"), std::string::npos);

  const harness::RunResult run = harness::ScenarioRunner::run(config, jobs);
  EXPECT_FALSE(run.timeseries.enabled());
  EXPECT_EQ(run.tail.groups.size(), 0u);
  std::ostringstream two_arg;
  obs::write_chrome_trace(two_arg, run.spans.get(), run.events.get());
  std::ostringstream four_arg;
  obs::write_chrome_trace(four_arg, run.spans.get(), run.events.get(),
                          &run.timeseries);
  // A disabled series pointer must not change a byte of the trace.
  EXPECT_EQ(two_arg.str(), four_arg.str());
  EXPECT_EQ(two_arg.str().find("\"ph\":\"C\""), std::string::npos);
}

TEST(DeterminismTest, RealBackendUnselectedLeavesSimArtifactsByteIdentical) {
  // The substrate seam's contract: linking the real-execution backend —
  // and even running it, forks, SIGKILLs and all — must not perturb a
  // single byte of the simulator's artifacts. The sim side is the v3
  // report + chrome trace this suite already pins; the figure benches
  // (fig04/06/09/11) are the same pipeline, held byte-identical by CI's
  // cross-run cmp against pre-generated artifacts.
  harness::ScenarioConfig config = scenario_under_test();
  config.tail.enabled = true;
  config.timeseries.enabled = true;
  const std::vector<faas::JobSpec> jobs = jobs_under_test();

  const std::string report_before =
      render_report(harness::run_repetitions(config, jobs, 2));
  const harness::RunResult run_before = harness::ScenarioRunner::run(config, jobs);
  const std::string trace_before = render_trace(run_before);

  // Exercise the real backend in between: fork workers, kill one
  // mid-execution, recover from a checkpoint.
  realexec::RealScenarioConfig real;
  real.kernel = realexec::KernelKind::kCensus;
  real.seed = 33;
  real.size_param = 200'000;
  real.steps_total = 8;
  real.policy = realexec::RecoveryPolicy::kCheckpointRestore;
  real.kill_after_commit_step = 2;
  real.kill_delay = Duration::msec(2);
  real.kills = 1;
  real.heartbeat_interval = Duration::msec(60);
  real.timeout_multiplier = 5.0;
  realexec::RealBackend backend;
  const realexec::RealScenarioResult real_result = backend.run(real);
  ASSERT_TRUE(real_result.completed);
  ASSERT_TRUE(real_result.violations.empty());

  const std::string report_after =
      render_report(harness::run_repetitions(config, jobs, 2));
  const harness::RunResult run_after = harness::ScenarioRunner::run(config, jobs);

  EXPECT_EQ(report_before, report_after)
      << "running the real backend perturbed the sim report";
  EXPECT_EQ(trace_before, render_trace(run_after))
      << "running the real backend perturbed the chrome trace";
  EXPECT_NE(report_before.find("canary.run_report/v3"), std::string::npos);
}

// ---- sharded execution: worker-count invariance -----------------------
//
// The parallel engine's contract: the partition count fixes the model,
// worker threads only map partitions onto cores. With partitions pinned
// at 8, the merged report and the multi-process chrome trace must be
// byte-identical at workers ∈ {1, 2, 4, 8} — with and without traffic,
// hedging, and attribution enabled.

harness::ScenarioConfig sharded_scenario(unsigned workers) {
  harness::ScenarioConfig config = scenario_under_test();
  config.cluster_nodes = 48;  // 6 nodes per partition
  config.sharding.enabled = true;
  config.sharding.partitions = 8;
  config.sharding.workers = workers;
  return config;
}

std::vector<faas::JobSpec> sharded_jobs() {
  std::vector<faas::JobSpec> jobs;
  for (int i = 0; i < 12; ++i) {
    jobs.push_back(workloads::make_mixed_batch(4 + i % 5));
  }
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(workloads::make_mapreduce_job(4, 2));
  }
  return jobs;
}

void add_traffic(harness::ScenarioConfig& config) {
  config.traffic.enabled = true;
  config.traffic.horizon = Duration::sec(10.0);
  for (int s = 0; s < 8; ++s) {
    traffic::StreamConfig stream;
    stream.name = "det-stream-" + std::to_string(s);
    faas::StateSpec state;
    state.duration = Duration::msec(150 + 40 * s);
    state.checkpoint_payload = Bytes::of(128 * 1024);
    stream.fn.states.push_back(state);
    stream.fn.finalize = Duration::msec(40);
    stream.arrival.rate_hz = 4.0 + s;
    stream.sla = Duration::sec(6.0);
    stream.admission.max_concurrent = 6;
    stream.admission.queue_capacity = 16;
    config.traffic.streams.push_back(std::move(stream));
  }
  config.traffic.autoscaler.enabled = true;
  config.traffic.autoscaler.max_warm = 6;
}

void add_hedging(harness::ScenarioConfig& config) {
  recovery::HedgeConfig hedge;
  hedge.percentile = 90.0;
  hedge.min_samples = 6;
  hedge.initial_delay = Duration::msec(800);
  hedge.max_outstanding = 8;
  config.strategy = recovery::StrategyConfig::hedged(hedge);
  config.gray_failures.push_back({Duration::sec(3.0)});
}

void add_attribution(harness::ScenarioConfig& config) {
  config.tail.enabled = true;
  config.timeseries.enabled = true;
}

void add_partitions(harness::ScenarioConfig& config) {
  // The v3 partition surface, active inside every engine slice: a zone
  // bipartition that fences the slice's minority side, plus a correlated
  // zone outage landing on the already-fenced nodes (skipped kills).
  config.detection.enabled = true;
  config.detection.heartbeat_interval = Duration::msec(250);
  config.detection.timeout_multiplier = 2.0;
  config.detection.confirm_multiplier = 1.0;
  config.detection.sweep_interval = Duration::msec(100);
  config.detection.horizon = Duration::sec(600.0);
  config.fault_domain_spread = true;
  harness::ScenarioConfig::PartitionFault window;
  window.at = Duration::sec(2.0);
  window.duration = Duration::sec(3.0);
  window.zone = 1;
  config.partitions.push_back(window);
  config.zone_outages.push_back({Duration::sec(6.0), 1});
}

std::string render_sharded_report(const harness::RunResult& result,
                                  const harness::ScenarioConfig& config) {
  harness::Aggregate agg;
  agg.add(result);
  return harness::make_report("shard_probe", config, agg).to_json();
}

std::string render_sharded_trace(const harness::RunResult& result) {
  std::vector<obs::TraceSection> sections;
  for (const auto& shard : result.shards) {
    sections.push_back({shard->spans.get(), shard->events.get(),
                        shard->timeseries.enabled() ? &shard->timeseries
                                                    : nullptr});
  }
  std::ostringstream out;
  obs::write_chrome_trace(out, sections);
  return out.str();
}

void expect_worker_invariant(
    const std::function<void(harness::ScenarioConfig&)>& mutate) {
  const std::vector<faas::JobSpec> jobs = sharded_jobs();
  std::string reference_report;
  std::string reference_trace;
  for (const unsigned workers : {1u, 2u, 4u, 8u}) {
    harness::ScenarioConfig config = sharded_scenario(workers);
    if (mutate) mutate(config);
    const harness::RunResult result =
        harness::ScenarioRunner::run(config, jobs);
    ASSERT_EQ(result.shards.size(), 8u);
    const std::string report = render_sharded_report(result, config);
    const std::string trace = render_sharded_trace(result);
    ASSERT_FALSE(report.empty());
    ASSERT_FALSE(trace.empty());
    if (workers == 1) {
      reference_report = report;
      reference_trace = trace;
      continue;
    }
    EXPECT_EQ(report, reference_report)
        << "merged report diverged at workers=" << workers;
    EXPECT_EQ(trace, reference_trace)
        << "sharded trace diverged at workers=" << workers;
  }
}

TEST(ShardInvarianceTest, ReportAndTraceInvariantAcrossWorkerCounts) {
  expect_worker_invariant(nullptr);
}

TEST(ShardInvarianceTest, InvariantWithTraffic) {
  expect_worker_invariant([](harness::ScenarioConfig& c) { add_traffic(c); });
}

TEST(ShardInvarianceTest, InvariantWithHedging) {
  expect_worker_invariant([](harness::ScenarioConfig& c) { add_hedging(c); });
}

TEST(ShardInvarianceTest, InvariantWithAttribution) {
  expect_worker_invariant(
      [](harness::ScenarioConfig& c) { add_attribution(c); });
}

TEST(ShardInvarianceTest, InvariantWithPartitions) {
  // Worker invariance with the partition surface ENABLED: zone cuts,
  // logical fencing, and the correlated outage resolve inside each
  // engine slice, so the worker count still must not change a byte.
  expect_worker_invariant(
      [](harness::ScenarioConfig& c) { add_partitions(c); });
}

TEST(DeterminismTest, PartitionSurfaceOffKeepsArtifactsByteIdentical) {
  // The partition-off contract: a scenario that never schedules a
  // partition, zone outage, or fault-domain spread produces a report and
  // trace with zero v3-surface artifacts — the same bytes a pre-surface
  // build would emit (CI cross-checks the figure outputs the same way).
  const harness::ScenarioConfig config = scenario_under_test();
  const std::vector<faas::JobSpec> jobs = jobs_under_test();

  const std::string report =
      render_report(harness::run_repetitions(config, jobs, 2));
  ASSERT_FALSE(report.empty());
  EXPECT_EQ(report.find("partitions_started"), std::string::npos);
  EXPECT_EQ(report.find("zombie_commit_attempts"), std::string::npos);
  EXPECT_EQ(report.find("stale_epoch_rejects"), std::string::npos);
  EXPECT_EQ(report.find("nodes_fenced_logical"), std::string::npos);
  EXPECT_EQ(report.find("heartbeats_partition_dropped"), std::string::npos);

  const harness::RunResult run = harness::ScenarioRunner::run(config, jobs);
  EXPECT_EQ(run.injected_partitions, 0u);
  EXPECT_EQ(run.injected_zone_outages, 0u);
  EXPECT_EQ(run.heartbeats_partition_dropped, 0u);
  EXPECT_EQ(run.kv_stale_epoch_rejects, 0u);
  EXPECT_EQ(run.kv_quorum_blocked_puts, 0u);
  const std::string trace = render_trace(run);
  EXPECT_EQ(trace.find("partition_start"), std::string::npos);
  EXPECT_EQ(trace.find("partition_heal"), std::string::npos);
  EXPECT_EQ(trace.find("node_fenced"), std::string::npos);
  EXPECT_EQ(trace.find("injected_zone_outage"), std::string::npos);
}

TEST(ShardInvarianceTest, ShardedRunExercisesCrossShardChannels) {
  // The invariance above would be vacuous if nothing crossed shards:
  // assert the KV mirror and completion beacons actually flowed.
  harness::ScenarioConfig config = sharded_scenario(2);
  const harness::RunResult result =
      harness::ScenarioRunner::run(config, sharded_jobs());
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.shard_messages, 0u);
  EXPECT_GT(result.shard_epochs, 0u);
  EXPECT_GT(result.metrics.counter("shard_job_beacons"), 0.0);
  EXPECT_GT(result.metrics.counter("kv_mirror_in"), 0.0);
}

TEST(ShardInvarianceTest, ShardingOffIsUntouched) {
  // sharding.enabled=false must route through the monolithic path and
  // leave no sharded artifacts behind.
  const harness::RunResult result =
      harness::ScenarioRunner::run(scenario_under_test(), jobs_under_test());
  EXPECT_TRUE(result.shards.empty());
  EXPECT_EQ(result.shard_epochs, 0u);
  EXPECT_EQ(result.shard_messages, 0u);
  EXPECT_EQ(result.metrics.counter("shard_job_beacons"), 0.0);
}

TEST(DeterminismTest, HeadlineScalarsAreReproducible) {
  const harness::ScenarioConfig config = scenario_under_test();
  const std::vector<faas::JobSpec> jobs = jobs_under_test();

  const harness::RunResult a = harness::ScenarioRunner::run(config, jobs);
  const harness::RunResult b = harness::ScenarioRunner::run(config, jobs);

  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.total_recovery_s, b.total_recovery_s);
  EXPECT_EQ(a.lost_work_s, b.lost_work_s);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.cost_usd, b.cost_usd);
  EXPECT_EQ(a.simulated_events, b.simulated_events);
  EXPECT_EQ(a.metrics.counters(), b.metrics.counters());
}

}  // namespace
}  // namespace canary
