// Full-stack integration: every major feature exercised together in one
// run — Canary with dynamic replication + checkpointing + proactive
// mitigation + SLA-awareness, trigger-driven workflows, container reuse,
// correlated node failures, and the execution trace — verifying the
// cross-feature behaviour no single-module test can.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "workloads/workloads.hpp"

namespace canary {
namespace {

harness::ScenarioConfig everything_on(double error_rate,
                                      std::uint64_t seed = 2022) {
  harness::ScenarioConfig config;
  config.strategy = recovery::StrategyConfig::canary_full();
  config.strategy.canary.proactive.enabled = true;
  config.strategy.canary.proactive.suspect_threshold = 2;
  config.strategy.canary.sla_aware = true;
  config.strategy.canary.checkpointing.compress = true;
  config.platform.reuse_containers = true;
  config.error_rate = error_rate;
  config.cluster_nodes = 12;
  config.seed = seed;
  harness::ScenarioConfig::CorrelatedNodeFailure degrading;
  degrading.at = Duration::sec(18.0);
  config.correlated_node_failures = {degrading};
  return config;
}

std::vector<faas::JobSpec> mixed_portfolio() {
  // A workflow job with an SLA, a plain batch, and a heavyweight DL job —
  // three shapes competing for the same cluster.
  auto mapreduce = workloads::make_mapreduce_job(12, 3);
  mapreduce.sla = Duration::sec(90.0);
  return {std::move(mapreduce),
          workloads::make_job(workloads::WorkloadKind::kWebService, 40),
          workloads::make_job(workloads::WorkloadKind::kDlTraining, 20)};
}

TEST(FullStackTest, AllFeaturesTogetherComplete) {
  const auto result =
      harness::ScenarioRunner::run(everything_on(0.25), mixed_portfolio());
  ASSERT_TRUE(result.completed);
  // All 75 functions done exactly once.
  EXPECT_EQ(result.counters.at("functions_completed"), 75.0);
  // Failures occurred and every one recovered.
  EXPECT_GT(result.failures, 0.0);
  EXPECT_EQ(result.counters.at("failures"), result.counters.at("recoveries"));
  // The feature set actually engaged.
  EXPECT_GE(result.counters.at("node_failures"), 1.0);
  EXPECT_GT(result.counters.at("checkpoints_written"), 0.0);
  EXPECT_GT(result.counters.at("replicas_launched"), 0.0);
  // SLA accounting saw the deadline-carrying job.
  EXPECT_EQ(result.sla_jobs, 1.0);
}

TEST(FullStackTest, DeterministicUnderFullFeatureLoad) {
  const auto a =
      harness::ScenarioRunner::run(everything_on(0.25), mixed_portfolio());
  const auto b =
      harness::ScenarioRunner::run(everything_on(0.25), mixed_portfolio());
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.total_recovery_s, b.total_recovery_s);
  EXPECT_EQ(a.cost_usd, b.cost_usd);
  EXPECT_EQ(a.simulated_events, b.simulated_events);
}

TEST(FullStackTest, FullCanaryStillBeatsRetryOnTheSamePortfolio) {
  auto retry_config = everything_on(0.25);
  retry_config.strategy = recovery::StrategyConfig::retry();
  retry_config.platform.reuse_containers = false;
  const auto retry =
      harness::ScenarioRunner::run(retry_config, mixed_portfolio());
  const auto canary =
      harness::ScenarioRunner::run(everything_on(0.25), mixed_portfolio());
  ASSERT_TRUE(retry.completed);
  ASSERT_TRUE(canary.completed);
  EXPECT_LT(canary.total_recovery_s, retry.total_recovery_s);
  EXPECT_LT(canary.makespan_s, retry.makespan_s);
}

TEST(FullStackTest, SurvivesSweepOfErrorRates) {
  for (const double rate : {0.0, 0.1, 0.3, 0.5}) {
    const auto result =
        harness::ScenarioRunner::run(everything_on(rate), mixed_portfolio());
    ASSERT_TRUE(result.completed) << "error rate " << rate;
    EXPECT_EQ(result.counters.at("functions_completed"), 75.0)
        << "error rate " << rate;
  }
}

}  // namespace
}  // namespace canary
