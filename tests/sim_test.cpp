// Unit tests for the discrete-event simulation engine.
#include <gtest/gtest.h>

#include <vector>

#include "obs/metric_registry.hpp"
#include "sim/simulator.hpp"

namespace canary::sim {
namespace {

TEST(SimulatorTest, StartsAtOrigin) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint::origin());
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::msec(30), [&] { order.push_back(3); });
  sim.schedule_after(Duration::msec(10), [&] { order.push_back(1); });
  sim.schedule_after(Duration::msec(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::msec(30));
}

TEST(SimulatorTest, EqualTimestampsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(Duration::msec(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim;
  TimePoint seen;
  sim.schedule_after(Duration::sec(2.5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, TimePoint::origin() + Duration::sec(2.5));
}

TEST(SimulatorTest, CallbacksCanScheduleMore) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule_after(Duration::msec(1), chain);
  };
  sim.schedule_after(Duration::msec(1), chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::msec(5));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  auto handle = sim.schedule_after(Duration::msec(10), [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelAfterFireIsNoop) {
  Simulator sim;
  int fired = 0;
  auto handle = sim.schedule_after(Duration::msec(1), [&] { ++fired; });
  sim.run();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must not crash or double-count
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no-op
}

TEST(SimulatorTest, RunUntilLeavesLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(Duration::msec(10), [&] { ++fired; });
  sim.schedule_after(Duration::msec(30), [&] { ++fired; });
  sim.run_until(TimePoint::origin() + Duration::msec(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::msec(20));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StepExecutesOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(Duration::msec(1), [&] { ++fired; });
  sim.schedule_after(Duration::msec(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(Duration::msec(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_after(Duration::msec(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, ExecutedEventCountExcludesCancelled) {
  Simulator sim;
  auto handle = sim.schedule_after(Duration::msec(1), [] {});
  sim.schedule_after(Duration::msec(2), [] {});
  handle.cancel();
  sim.run();
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime) {
  Simulator sim;
  TimePoint seen;
  sim.schedule_at(TimePoint::from_usec(5000), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen.count_usec(), 5000);
}

TEST(SimulatorDeathTest, SchedulingInThePastAborts) {
  Simulator sim;
  sim.schedule_after(Duration::msec(10), [] {});
  sim.run();
  EXPECT_DEATH(sim.schedule_at(TimePoint::from_usec(1), [] {}),
               "cannot schedule an event in the past");
}

// ---- metrics ------------------------------------------------------------

TEST(MetricRegistryTest, CountersAccumulate) {
  obs::MetricRegistry m;
  m.count("x");
  m.count("x", 2.5);
  EXPECT_DOUBLE_EQ(m.counter("x"), 3.5);
  EXPECT_DOUBLE_EQ(m.counter("missing"), 0.0);
}

TEST(MetricRegistryTest, SamplesRecorded) {
  obs::MetricRegistry m;
  m.sample("lat", 1.0);
  m.sample("lat", 3.0);
  m.sample_duration("dur", Duration::msec(500));
  EXPECT_EQ(m.histogram("lat").count(), 2u);
  EXPECT_DOUBLE_EQ(m.histogram("lat").mean(), 2.0);
  EXPECT_DOUBLE_EQ(m.histogram("dur").mean(), 0.5);
  EXPECT_TRUE(m.histogram("missing").empty());
}

}  // namespace
}  // namespace canary::sim
