// Real-execution backend: forked worker processes under real signals.
//
// The headline test is the split-brain one from the paper's
// exactly-once argument: a worker that goes silent long enough to be
// heartbeat-declared dead — but is NOT physically killed — wakes up
// and writes its state commit anyway. The controller fenced its node
// in the KV store *before* draining, so the zombie's late write must
// bounce off the epoch fence (kCommitStale + stale_epoch_rejects) and
// never count as an accepted commit. Everything here runs real
// fork/SIGKILL/SIGSTOP against wall-clock heartbeats, so assertions
// are on ordering and counters, never on absolute durations.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "faas/substrate.hpp"
#include "realexec/backend.hpp"
#include "realexec/controller.hpp"
#include "realexec/kernel_run.hpp"

namespace canary::realexec {
namespace {

using Kind = ControllerEvent::Kind;

ControllerConfig fast_config() {
  ControllerConfig config;
  // Generous enough that a TSan-instrumented worker on a loaded CI
  // runner never misses a beat while genuinely alive; the fault hooks
  // silence workers for far longer than this deadline.
  config.heartbeat_interval = Duration::msec(40);
  config.timeout_multiplier = 4.0;
  return config;
}

/// Pump the controller until `pred` matches an event or `deadline`
/// wall time elapses. Returns the matching event.
std::optional<ControllerEvent> wait_for(
    Controller& ctl, Duration deadline,
    const std::function<bool(const ControllerEvent&)>& pred) {
  const TimePoint until = ctl.now() + deadline;
  std::vector<ControllerEvent> events;
  while (ctl.now() < until) {
    events.clear();
    ctl.poll_events(Duration::msec(50), &events);
    for (const ControllerEvent& ev : events) {
      if (pred(ev)) return ev;
    }
  }
  return std::nullopt;
}

std::optional<ControllerEvent> wait_for_kind(Controller& ctl,
                                             Duration deadline, Kind kind) {
  return wait_for(ctl, deadline,
                  [kind](const ControllerEvent& ev) { return ev.kind == kind; });
}

TEST(RealExecKernelTest, CheckpointRestoreRoundtripMatchesReference) {
  struct Case {
    KernelKind kind;
    std::uint64_t size;
  };
  const Case cases[] = {
      {KernelKind::kGraphBfs, 1u << 14},
      {KernelKind::kCompression, 256u * 1024},
      {KernelKind::kCensus, 2000},
  };
  for (const Case& c : cases) {
    const std::uint32_t steps = 4;
    const std::uint64_t seed = 11;
    const std::uint64_t reference =
        reference_checksum(c.kind, seed, c.size, steps);

    // Run half, checkpoint, resume in a fresh instance (a new process
    // would deserialize exactly these bytes), finish.
    KernelRun first(c.kind, seed, c.size, steps);
    first.init();
    first.run_step([] {});
    first.run_step([] {});
    const std::string bytes = first.checkpoint();
    ASSERT_FALSE(bytes.empty());

    KernelRun second(c.kind, seed, c.size, steps);
    second.init();
    second.restore(bytes);
    second.run_step([] {});
    second.run_step([] {});
    EXPECT_TRUE(second.done());
    EXPECT_EQ(second.checksum(), reference)
        << "kernel " << static_cast<int>(c.kind)
        << " diverged after checkpoint/restore";
  }
}

TEST(RealExecControllerTest, ZombieLateCommitBouncesOffEpochFence) {
  // kill_on_fence=false: the heartbeat detector fences the worker but
  // leaves the process alive, exactly the split-brain scenario — the
  // "dead" side keeps executing and tries to commit.
  ControllerConfig config = fast_config();
  config.kill_on_fence = false;
  Controller ctl(config);

  const WorkerId w = ctl.spawn();
  ASSERT_TRUE(wait_for_kind(ctl, Duration::sec(10.0), Kind::kHello))
      << "worker never said hello";

  TaskSpec spec;
  spec.kernel = KernelKind::kCensus;
  spec.seed = 3;
  spec.size_param = 50'000;
  spec.steps_total = 6;
  spec.invocation = 7;
  // Worker goes silent (no heartbeats, no commits) for 500ms right
  // before committing step 2, far past the 160ms death deadline —
  // then commits anyway, as a zombie.
  spec.hold_before_commit_step = 2;
  spec.hold = Duration::msec(500);
  const std::uint32_t epoch = ctl.dispatch(w, spec);

  const auto dead = wait_for_kind(ctl, Duration::sec(10.0), Kind::kWorkerDead);
  ASSERT_TRUE(dead) << "silent worker was never declared dead";
  EXPECT_EQ(dead->worker, w);
  EXPECT_EQ(ctl.state_of(w), WorkerState::kDead);
  EXPECT_TRUE(ctl.store().node_fenced(ctl.node_of(w)))
      << "death must fence the node before any drain";

  // Steps 0 and 1 landed before the hold; nothing after may count.
  EXPECT_EQ(ctl.last_committed_step(spec.invocation), 1);

  // The zombie wakes and writes its step-2 commit into the still-open
  // pipe. The controller must surface it as a stale reject.
  const auto stale = wait_for(
      ctl, Duration::sec(10.0), [&](const ControllerEvent& ev) {
        return ev.kind == Kind::kCommitStale && ev.worker == w && ev.step == 2;
      });
  ASSERT_TRUE(stale) << "zombie's late commit never surfaced";
  EXPECT_EQ(stale->epoch, epoch);

  const ControllerStats stats = ctl.stats();
  EXPECT_EQ(stats.heartbeat_deaths, 1u);
  EXPECT_EQ(stats.commits_accepted, 2u);  // steps 0, 1 only
  EXPECT_EQ(stats.unfenced_stale_commits, 0u)
      << "a stale commit slipped past the epoch fence (exactly-once broken)";
  EXPECT_GE(ctl.store().stats().stale_epoch_rejects, 1u)
      << "the KV fence, not controller bookkeeping, must reject the write";
  EXPECT_EQ(ctl.last_committed_step(spec.invocation), 1);
}

TEST(RealExecControllerTest, TornCommitFrameIsDiscardedAtDrain) {
  // The worker writes half a commit frame for step 2 and wedges; the
  // death drain must flag the partial frame as torn, not accept or
  // misparse it, and the latest intact checkpoint must stay step 1.
  Controller ctl(fast_config());

  const WorkerId w = ctl.spawn();
  ASSERT_TRUE(wait_for_kind(ctl, Duration::sec(10.0), Kind::kHello));

  TaskSpec spec;
  spec.kernel = KernelKind::kCensus;
  spec.seed = 5;
  spec.size_param = 50'000;
  spec.steps_total = 6;
  spec.invocation = 1;
  spec.torn_commit_step = 2;
  ctl.dispatch(w, spec);

  // The death drain flags the torn frame inside the same poll batch
  // that reports the death, so collect the whole batch stream.
  const TimePoint until = ctl.now() + Duration::sec(10.0);
  bool dead_seen = false;
  bool torn_seen = false;
  while (ctl.now() < until && !(dead_seen && torn_seen)) {
    std::vector<ControllerEvent> batch;
    ctl.poll_events(Duration::msec(50), &batch);
    for (const ControllerEvent& ev : batch) {
      dead_seen |= ev.kind == Kind::kWorkerDead;
      torn_seen |= ev.kind == Kind::kCommitTorn && ev.worker == w;
    }
  }
  ASSERT_TRUE(dead_seen) << "wedged worker was never declared dead";
  ASSERT_TRUE(torn_seen) << "half-written commit frame was not flagged torn";

  const ControllerStats stats = ctl.stats();
  EXPECT_GE(stats.commits_torn, 1u);
  EXPECT_EQ(stats.commits_accepted, 2u);
  EXPECT_EQ(stats.unfenced_stale_commits, 0u);

  const auto ckpt = ctl.latest_checkpoint(spec.invocation);
  ASSERT_TRUE(ckpt) << "intact checkpoints before the tear must survive";
  EXPECT_EQ(ckpt->step, 1u);
  ASSERT_FALSE(ckpt->bytes.empty());

  // No-corrupt-restore oracle: the surviving bytes actually load.
  KernelRun resume(spec.kernel, spec.seed, spec.size_param, spec.steps_total);
  resume.init();
  resume.restore(ckpt->bytes);
}

TEST(RealExecControllerTest, SigstopIsIndistinguishableFromDeath) {
  // SIGSTOP freezes heartbeats without closing any fd — detection must
  // come from the deadline sweep, and the fence must land regardless.
  Controller ctl(fast_config());

  const WorkerId w = ctl.spawn();
  ASSERT_TRUE(wait_for_kind(ctl, Duration::sec(10.0), Kind::kHello));

  TaskSpec spec;
  spec.kernel = KernelKind::kCensus;
  spec.seed = 9;
  spec.size_param = 200'000;
  spec.steps_total = 8;
  spec.invocation = 2;
  ctl.dispatch(w, spec);

  ASSERT_TRUE(wait_for_kind(ctl, Duration::sec(10.0), Kind::kCommitAccepted))
      << "worker never committed step 0";
  ctl.sigstop(w);

  const auto dead = wait_for_kind(ctl, Duration::sec(10.0), Kind::kWorkerDead);
  ASSERT_TRUE(dead) << "stopped worker was never declared dead";
  EXPECT_EQ(dead->worker, w);
  EXPECT_EQ(ctl.state_of(w), WorkerState::kDead);
  EXPECT_TRUE(ctl.store().node_fenced(ctl.node_of(w)));
  EXPECT_EQ(ctl.stats().heartbeat_deaths, 1u);
}

TEST(RealExecBackendTest, SigkillMidExecutionRecoversFromCheckpoint) {
  // End to end: the injector's node-kill as a real SIGKILL, recovery by
  // checkpoint restore, all oracles (completion, exactly-once,
  // no-corrupt-restore) enforced by the backend itself via violations.
  RealScenarioConfig scenario;
  scenario.kernel = KernelKind::kCensus;
  scenario.seed = 21;
  scenario.size_param = 200'000;
  scenario.steps_total = 8;
  scenario.policy = RecoveryPolicy::kCheckpointRestore;
  scenario.kill_after_commit_step = 2;
  scenario.kill_delay = Duration::msec(2);
  scenario.kills = 1;
  scenario.heartbeat_interval = Duration::msec(60);
  scenario.timeout_multiplier = 5.0;

  RealBackend backend;
  const RealScenarioResult result = backend.run(scenario);

  EXPECT_TRUE(result.violations.empty())
      << "oracle violations: "
      << (result.violations.empty() ? "" : result.violations.front());
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.final_checksum, result.reference_checksum);
  EXPECT_EQ(result.recoveries, 1u);
  EXPECT_EQ(result.stats.sigkills_sent, 1u);
  EXPECT_GE(result.stats.workers_spawned, 2u);
  EXPECT_EQ(result.stats.unfenced_stale_commits, 0u);
  EXPECT_EQ(result.stats.duplicate_commits, 0u);
  EXPECT_GT(result.recovery.detection_s, 0.0)
      << "heartbeat detection takes real wall time";
  EXPECT_GT(result.recovery.window_s(), 0.0);

  const faas::SubstrateRunSummary summary = result.summary();
  EXPECT_EQ(summary.backend, "real");
  EXPECT_TRUE(summary.completed);
  EXPECT_EQ(summary.recoveries, 1u);
  EXPECT_NEAR(summary.recovery_window_s, result.recovery.window_s(), 1e-12);
}

TEST(RealExecBackendTest, RetryPolicyRestartsFromScratch) {
  RealScenarioConfig scenario;
  scenario.kernel = KernelKind::kCensus;
  scenario.seed = 22;
  scenario.size_param = 200'000;
  scenario.steps_total = 8;
  scenario.policy = RecoveryPolicy::kRetry;
  scenario.kill_after_commit_step = 2;
  scenario.kill_delay = Duration::msec(2);
  scenario.kills = 1;
  scenario.heartbeat_interval = Duration::msec(60);
  scenario.timeout_multiplier = 5.0;

  RealBackend backend;
  const RealScenarioResult result = backend.run(scenario);

  EXPECT_TRUE(result.violations.empty())
      << (result.violations.empty() ? "" : result.violations.front());
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.final_checksum, result.reference_checksum);
  EXPECT_EQ(result.recoveries, 1u);
  // Retry restores nothing: the whole resume cost is re-execution.
  EXPECT_EQ(result.recovery.restore_s, 0.0);
}

TEST(RealExecSubstrateTest, BackendSelectorParses) {
  EXPECT_EQ(faas::parse_backend("sim"), faas::BackendKind::kSim);
  EXPECT_EQ(faas::parse_backend("real"), faas::BackendKind::kReal);
  EXPECT_EQ(faas::parse_backend("hybrid"), std::nullopt);
  EXPECT_EQ(faas::to_string_view(faas::BackendKind::kReal), "real");
}

}  // namespace
}  // namespace canary::realexec
