// Unit tests for the FaaS platform: lifecycle timing, scheduling,
// concurrency limits, warm containers, failure handling, retry recovery,
// recovery-time accounting, and the usage ledger.
#include <gtest/gtest.h>

#include <optional>

#include "cluster/cluster.hpp"
#include "cluster/network.hpp"
#include "faas/platform.hpp"
#include "faas/retry.hpp"
#include "obs/metric_registry.hpp"
#include "sim/simulator.hpp"

namespace canary::faas {
namespace {

/// Uniform-speed cluster (all Xeon 6242, factor 1.0) so timings are exact.
std::vector<cluster::NodeSpec> uniform_nodes(std::size_t n,
                                             std::uint32_t slots = 64) {
  std::vector<cluster::NodeSpec> specs(n);
  for (auto& s : specs) {
    s.cpu = cluster::CpuClass::kXeonGold6242;
    s.container_slots = slots;
  }
  return specs;
}

FunctionSpec simple_function(std::size_t states = 2,
                             Duration state_dur = Duration::sec(1.0)) {
  FunctionSpec fn;
  fn.name = "fn";
  fn.runtime = RuntimeImage::kPython3;
  for (std::size_t i = 0; i < states; ++i) fn.states.push_back({state_dur, {}});
  fn.finalize = Duration::msec(500);
  return fn;
}

/// Kills attempt `attempt_to_kill` of every function at a fixed offset.
class FixedKillPolicy : public FailurePolicy {
 public:
  FixedKillPolicy(int attempt_to_kill, Duration offset)
      : attempt_(attempt_to_kill), offset_(offset) {}
  std::optional<Duration> plan_kill(const Invocation&, int attempt,
                                    Duration) override {
    if (attempt == attempt_) return offset_;
    return std::nullopt;
  }

 private:
  int attempt_;
  Duration offset_;
};

class PlatformTest : public ::testing::Test {
 protected:
  explicit PlatformTest(std::size_t nodes = 2)
      : cluster_(uniform_nodes(nodes)), network_(&cluster_, {}) {}

  Platform& make_platform(PlatformConfig config = {}) {
    config.scheduler_overhead = Duration::zero();
    platform_.emplace(sim_, cluster_, network_, config, metrics_);
    retry_.emplace(*platform_);
    platform_->set_recovery_handler(&*retry_);
    return *platform_;
  }

  JobId submit_one(Platform& p, FunctionSpec fn) {
    JobSpec job;
    job.name = "job";
    job.functions.push_back(std::move(fn));
    auto result = p.submit_job(std::move(job));
    EXPECT_TRUE(result.ok());
    return result.value();
  }

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::NetworkModel network_;
  obs::MetricRegistry metrics_;
  std::optional<Platform> platform_;
  std::optional<RetryHandler> retry_;
};

TEST_F(PlatformTest, SingleFunctionTimingMatchesProfile) {
  auto& p = make_platform();
  const JobId job = submit_one(p, simple_function());
  sim_.run();
  ASSERT_TRUE(p.job_completed(job));
  // python3: 450ms launch + 350ms init + 2x1s states + 500ms finalize.
  EXPECT_EQ(p.job_completion_time(job).count_usec(), 3'300'000);
  const auto& inv = p.invocation(p.job_functions(job).front());
  EXPECT_EQ(inv.phase, Phase::kCompleted);
  EXPECT_EQ(inv.attempt, 1);
  EXPECT_EQ(inv.failures, 0);
  EXPECT_EQ(inv.work_done, Duration::sec(2.0));
}

TEST_F(PlatformTest, SubmitValidation) {
  auto& p = make_platform();
  JobSpec empty;
  EXPECT_FALSE(p.submit_job(empty).ok());

  JobSpec huge_mem;
  FunctionSpec fn = simple_function();
  fn.memory = Bytes::gib(100);
  huge_mem.functions.push_back(fn);
  const auto rejected = p.submit_job(huge_mem);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, ErrorCode::kResourceExhausted);
}

TEST_F(PlatformTest, AccountConcurrencyLimitQueues) {
  PlatformConfig config;
  config.limits.max_concurrent_invocations = 2;
  auto& p = make_platform(config);
  JobSpec job;
  for (int i = 0; i < 4; ++i) job.functions.push_back(simple_function(1));
  const auto id = p.submit_job(std::move(job));
  ASSERT_TRUE(id.ok());

  // After the launch phase there must never be more than 2 non-pending
  // invocations in flight.
  bool checked = false;
  sim_.schedule_after(Duration::sec(1.0), [&] {
    int active = 0;
    for (const auto fid : p.job_functions(id.value())) {
      const auto phase = p.invocation(fid).phase;
      if (phase != Phase::kPending && phase != Phase::kCompleted) ++active;
    }
    EXPECT_LE(active, 2);
    checked = true;
  });
  sim_.run();
  EXPECT_TRUE(checked);
  EXPECT_TRUE(p.job_completed(id.value()));
  // Two waves: makespan roughly doubles the single-wave time.
  EXPECT_GT(p.job_completion_time(id.value()).to_seconds(), 2 * 2.2);
}

TEST_F(PlatformTest, CapacityWaitersEventuallyRun) {
  // One node, two slots, three functions.
  std::vector<cluster::NodeSpec> specs = uniform_nodes(1, 2);
  cluster_ = cluster::Cluster(specs);
  auto& p = make_platform();
  JobSpec job;
  for (int i = 0; i < 3; ++i) job.functions.push_back(simple_function(1));
  const auto id = p.submit_job(std::move(job));
  ASSERT_TRUE(id.ok());
  sim_.run();
  EXPECT_TRUE(p.job_completed(id.value()));
  EXPECT_GE(metrics_.counter("capacity_waits"), 1.0);
}

TEST_F(PlatformTest, KillDuringStateTriggersRetryFromScratch) {
  auto& p = make_platform();
  // Kill 1.5s into the attempt: launch(0.45)+init(0.35)=0.8, so 0.7s into
  // state 0 (of 1s).
  FixedKillPolicy policy(1, Duration::sec(1.5));
  p.set_failure_policy(&policy);
  const JobId job = submit_one(p, simple_function());
  sim_.run();
  ASSERT_TRUE(p.job_completed(job));
  const auto& inv = p.invocation(p.job_functions(job).front());
  EXPECT_EQ(inv.failures, 1);
  EXPECT_EQ(inv.attempt, 2);
  // Makespan: 1.5 (killed attempt) + 0.3 detect + full rerun 3.3.
  EXPECT_EQ(p.job_completion_time(job).count_usec(), 5'100'000);
  // Lost work: 0.7s partial state (no completed states on attempt 1).
  EXPECT_NEAR(inv.lost_work.to_seconds(), 0.7, 1e-6);
  // Recovery: from the kill at 1.5s until work_done reaches 0.7s again,
  // i.e. when state 0 completes on attempt 2 at 1.5+0.3+0.8+1.0 = 3.6s.
  EXPECT_NEAR(inv.recovery_time.to_seconds(), 2.1, 1e-6);
}

TEST_F(PlatformTest, KillDuringLaunchLosesNoWork) {
  auto& p = make_platform();
  FixedKillPolicy policy(1, Duration::msec(200));  // mid-launch
  p.set_failure_policy(&policy);
  const JobId job = submit_one(p, simple_function());
  sim_.run();
  const auto& inv = p.invocation(p.job_functions(job).front());
  EXPECT_EQ(inv.failures, 1);
  EXPECT_NEAR(inv.lost_work.to_seconds(), 0.0, 1e-9);
  // Recovery resolves when execution resumes: detect 0.3 + launch+init 0.8.
  EXPECT_NEAR(inv.recovery_time.to_seconds(), 1.1, 1e-6);
  EXPECT_TRUE(p.job_completed(job));
}

TEST_F(PlatformTest, KillAfterCompletedStatesLosesThem) {
  auto& p = make_platform();
  // Kill at 2.3s: 0.8 setup + state0 done at 1.8, 0.5s into state 1.
  FixedKillPolicy policy(1, Duration::sec(2.3));
  p.set_failure_policy(&policy);
  const JobId job = submit_one(p, simple_function());
  sim_.run();
  const auto& inv = p.invocation(p.job_functions(job).front());
  // Lost: state 0 redone (1.0) + 0.5 partial of state 1.
  EXPECT_NEAR(inv.lost_work.to_seconds(), 1.5, 1e-6);
  EXPECT_TRUE(p.job_completed(job));
}

TEST_F(PlatformTest, RetryCountsRestarts) {
  auto& p = make_platform();
  FixedKillPolicy policy(1, Duration::sec(1.0));
  p.set_failure_policy(&policy);
  const JobId job = submit_one(p, simple_function());
  sim_.run();
  EXPECT_EQ(metrics_.counter("retry_restarts"), 1.0);
  EXPECT_EQ(metrics_.counter("failures"), 1.0);
  EXPECT_EQ(metrics_.counter("recoveries"), 1.0);
  EXPECT_TRUE(p.job_completed(job));
}

TEST_F(PlatformTest, WarmContainerSkipsColdStart) {
  auto& p = make_platform();
  bool ready = false;
  ContainerId warm_id;
  auto launched = p.launch_warm_container(
      NodeId{1}, RuntimeImage::kPython3, ContainerPurpose::kRuntimeReplica,
      [&](ContainerId cid) {
        ready = true;
        warm_id = cid;
      });
  ASSERT_TRUE(launched.ok());
  sim_.run();
  ASSERT_TRUE(ready);
  EXPECT_TRUE(p.container(warm_id).warm_idle());
  EXPECT_EQ(p.warm_container_count(RuntimeImage::kPython3), 1u);

  // Dispatch a function onto it: only warm_dispatch (8ms) precedes states.
  const TimePoint start = sim_.now();
  const JobId job = submit_one(p, simple_function());
  const FunctionId fn = p.job_functions(job).front();
  // Cancel the automatic cold start by redirecting: the pending pump event
  // has not fired yet (scheduler overhead zero => schedule_after(0)), so
  // run one event and then restart warm.
  (void)start;
  sim_.run();  // cold path completes normally
  EXPECT_TRUE(p.job_completed(job));
  (void)fn;
}

TEST_F(PlatformTest, FindWarmContainerFilters) {
  auto& p = make_platform();
  (void)p.launch_warm_container(NodeId{1}, RuntimeImage::kPython3,
                                ContainerPurpose::kRuntimeReplica, nullptr);
  (void)p.launch_warm_container(NodeId{2}, RuntimeImage::kJava8,
                                ContainerPurpose::kStandby, nullptr);
  sim_.run();
  EXPECT_TRUE(p.find_warm_container(RuntimeImage::kPython3, std::nullopt,
                                    std::nullopt)
                  .has_value());
  EXPECT_FALSE(p.find_warm_container(RuntimeImage::kNodeJs14, std::nullopt,
                                     std::nullopt)
                   .has_value());
  EXPECT_FALSE(p.find_warm_container(RuntimeImage::kPython3, std::nullopt,
                                     ContainerPurpose::kStandby)
                   .has_value());
  EXPECT_TRUE(p.find_warm_container(RuntimeImage::kJava8, std::nullopt,
                                    ContainerPurpose::kStandby)
                  .has_value());
}

TEST_F(PlatformTest, StartAttemptOnWarmContainerTiming) {
  auto& p = make_platform();
  ContainerId warm_id;
  (void)p.launch_warm_container(
      NodeId{2}, RuntimeImage::kPython3, ContainerPurpose::kRuntimeReplica,
      [&](ContainerId cid) { warm_id = cid; });
  sim_.run();  // replica warm at t = 800ms
  ASSERT_TRUE(warm_id.valid());
  const TimePoint warm_at = sim_.now();
  EXPECT_EQ(warm_at.count_usec(), 800'000);

  // Submit, let the first (cold) attempt fail 100ms in, then recover onto
  // the warm container by hand.
  const JobId job = submit_one(p, simple_function());
  const FunctionId fn = p.job_functions(job).front();
  sim_.schedule_after(Duration::msec(100), [&] {
    p.kill_function(fn, FailureKind::kContainerKill);
    StartSpec spec;
    spec.container = warm_id;
    spec.from_state = 1;  // pretend a checkpoint restored state 0
    spec.extra_setup = Duration::msec(50);
    p.start_attempt(fn, spec);
  });
  sim_.run();
  const auto& inv = p.invocation(fn);
  EXPECT_TRUE(inv.completed());
  EXPECT_EQ(inv.attempt, 2);
  // Restarted 100ms after the warm point: 8ms warm dispatch + 50ms setup
  // + state1 (1s) + finalize (0.5s) = 1.558s after the restart.
  EXPECT_EQ(inv.completion_time.count_usec(),
            (warm_at + Duration::msec(100) + Duration::usec(1'558'000))
                .count_usec());
  // One container per function: the adopted replica is torn down at
  // completion like any other function container.
  EXPECT_EQ(p.container(warm_id).state, ContainerState::kDead);
}

TEST_F(PlatformTest, NodeFailureKillsEverythingOnIt) {
  auto& p = make_platform();
  const JobId job = submit_one(p, simple_function());
  // Launch the replica after the function has claimed node 1 so both sit
  // on the failure target.
  sim_.schedule_after(Duration::msec(100), [&] {
    ASSERT_EQ(p.invocation(p.job_functions(job).front()).node, NodeId{1});
    (void)p.launch_warm_container(NodeId{1}, RuntimeImage::kPython3,
                                  ContainerPurpose::kRuntimeReplica, nullptr);
  });
  bool node_failed = false;
  sim_.schedule_after(Duration::sec(1.2), [&] {
    p.fail_node(NodeId{1});
    node_failed = true;
  });
  sim_.run();
  EXPECT_TRUE(node_failed);
  EXPECT_FALSE(cluster_.node(NodeId{1}).alive());
  // The function recovered on node 2 via retry.
  const auto& inv = p.invocation(p.job_functions(job).front());
  EXPECT_TRUE(inv.completed());
  EXPECT_EQ(inv.node, NodeId{2});
  EXPECT_GE(inv.failures, 1);
  EXPECT_EQ(p.warm_container_count(RuntimeImage::kPython3), 0u);
}

TEST_F(PlatformTest, ColdStartContentionSlowsMassLaunch) {
  auto& p = make_platform();
  std::vector<TimePoint> ready_times;
  for (int i = 0; i < 6; ++i) {
    (void)p.launch_warm_container(
        NodeId{1}, RuntimeImage::kPython3, ContainerPurpose::kRuntimeReplica,
        [&](ContainerId) { ready_times.push_back(sim_.now()); });
  }
  sim_.run();
  ASSERT_EQ(ready_times.size(), 6u);
  // First launch sees no contention (multiplier 1.0): ready at 800ms.
  EXPECT_EQ(ready_times.front().count_usec(), 800'000);
  // The last one launched with 5 siblings in flight: multiplier 1.6.
  EXPECT_GT(ready_times.back(), ready_times.front());
  EXPECT_EQ(ready_times.back().count_usec(), 450'000 * 1.6 + 350'000);
}

TEST_F(PlatformTest, UsageLedgerRecordsIntervals) {
  auto& p = make_platform();
  const JobId job = submit_one(p, simple_function());
  sim_.run();
  p.finalize_usage();
  ASSERT_EQ(p.usage().records().size(), 1u);
  const auto& rec = p.usage().records().front();
  EXPECT_EQ(rec.purpose, ContainerPurpose::kFunction);
  EXPECT_EQ(rec.start.count_usec(), 0);
  EXPECT_EQ(rec.end.count_usec(), 3'300'000);
  // 3.3s * 0.25 GiB.
  EXPECT_NEAR(rec.gb_seconds(), 3.3 * 0.25, 1e-9);
  EXPECT_TRUE(p.job_completed(job));
}

TEST_F(PlatformTest, DiscardCompletesWithoutRunning) {
  auto& p = make_platform();
  const JobId job = submit_one(p, simple_function());
  const FunctionId fn = p.job_functions(job).front();
  sim_.schedule_after(Duration::msec(100), [&] { p.discard_function(fn); });
  sim_.run();
  EXPECT_TRUE(p.job_completed(job));
  EXPECT_EQ(p.job_completion_time(job).count_usec(), 100'000);
  EXPECT_EQ(metrics_.counter("functions_discarded"), 1.0);
}

TEST_F(PlatformTest, RetryBudgetGivesUp) {
  auto& p = make_platform();
  RetryHandler::Config config;
  config.max_retries = 1;
  retry_.emplace(p, config);
  p.set_recovery_handler(&*retry_);
  // Kill the first two attempts at a fixed offset; the retry budget (one
  // retry) is exhausted by the second failure.
  class EveryAttempt : public FailurePolicy {
   public:
    std::optional<Duration> plan_kill(const Invocation&, int attempt,
                                      Duration) override {
      if (attempt <= 2) return Duration::msec(100);
      return std::nullopt;
    }
  } every;
  p.set_failure_policy(&every);
  const JobId job = submit_one(p, simple_function());
  sim_.run();
  EXPECT_FALSE(p.job_completed(job));
  EXPECT_EQ(retry_->giveups(), 1);
}

TEST_F(PlatformTest, MultiFailureRecoveryAccumulates) {
  auto& p = make_platform();
  class TwoKills : public FailurePolicy {
   public:
    std::optional<Duration> plan_kill(const Invocation&, int attempt,
                                      Duration) override {
      if (attempt <= 2) return Duration::sec(1.0);
      return std::nullopt;
    }
  } policy;
  p.set_failure_policy(&policy);
  const JobId job = submit_one(p, simple_function());
  sim_.run();
  const auto& inv = p.invocation(p.job_functions(job).front());
  EXPECT_TRUE(inv.completed());
  EXPECT_EQ(inv.failures, 2);
  EXPECT_EQ(inv.attempt, 3);
  EXPECT_GT(inv.recovery_time.to_seconds(), 2.0);
}

TEST_F(PlatformTest, JobFunctionsAndInvocationLookup) {
  auto& p = make_platform();
  JobSpec job;
  job.functions.push_back(simple_function());
  job.functions.push_back(simple_function());
  const auto id = p.submit_job(std::move(job));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(p.job_functions(id.value()).size(), 2u);
  EXPECT_EQ(p.all_function_ids().size(), 2u);
  const auto& spec = p.job_spec(id.value());
  EXPECT_EQ(spec.functions.size(), 2u);
}

}  // namespace
}  // namespace canary::faas
