// Integration tests for the experiment harness: every strategy runs to
// completion, the paper's qualitative relationships hold, and runs are
// deterministic and reproducible.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "workloads/workloads.hpp"

namespace canary::harness {
namespace {

std::vector<faas::JobSpec> small_web_jobs(std::size_t functions = 20) {
  return {workloads::make_job(workloads::WorkloadKind::kWebService, functions)};
}

ScenarioConfig base_config(recovery::StrategyConfig strategy,
                           double error_rate) {
  ScenarioConfig config;
  config.strategy = strategy;
  config.error_rate = error_rate;
  config.cluster_nodes = 8;
  config.seed = 1234;
  return config;
}

// Every strategy completes a faulty run.
class StrategyCompletionTest
    : public ::testing::TestWithParam<recovery::StrategyKind> {};

TEST_P(StrategyCompletionTest, CompletesUnderFailures) {
  recovery::StrategyConfig strategy;
  strategy.kind = GetParam();
  const auto result =
      ScenarioRunner::run(base_config(strategy, 0.3), small_web_jobs());
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.makespan_s, 0.0);
  EXPECT_GT(result.cost_usd, 0.0);
  EXPECT_GT(result.simulated_events, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyCompletionTest,
    ::testing::Values(recovery::StrategyKind::kIdeal,
                      recovery::StrategyKind::kRetry,
                      recovery::StrategyKind::kCanary,
                      recovery::StrategyKind::kRequestReplication,
                      recovery::StrategyKind::kActiveStandby));

TEST(ScenarioRunnerTest, IdealHasNoFailures) {
  const auto result = ScenarioRunner::run(
      base_config(recovery::StrategyConfig::ideal(), 0.5), small_web_jobs());
  EXPECT_EQ(result.failures, 0.0);
  EXPECT_EQ(result.total_recovery_s, 0.0);
  EXPECT_EQ(result.lost_work_s, 0.0);
}

TEST(ScenarioRunnerTest, DeterministicForSameSeed) {
  const auto config = base_config(recovery::StrategyConfig::canary_full(), 0.25);
  const auto a = ScenarioRunner::run(config, small_web_jobs());
  const auto b = ScenarioRunner::run(config, small_web_jobs());
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.total_recovery_s, b.total_recovery_s);
  EXPECT_EQ(a.cost_usd, b.cost_usd);
  EXPECT_EQ(a.simulated_events, b.simulated_events);
}

TEST(ScenarioRunnerTest, SeedsChangeOutcomes) {
  auto config = base_config(recovery::StrategyConfig::retry(), 0.25);
  const auto a = ScenarioRunner::run(config, small_web_jobs());
  config.seed = 999;
  const auto b = ScenarioRunner::run(config, small_web_jobs());
  EXPECT_NE(a.total_recovery_s, b.total_recovery_s);
}

TEST(ScenarioRunnerTest, CanaryBeatsRetryOnRecovery) {
  const auto retry = ScenarioRunner::run(
      base_config(recovery::StrategyConfig::retry(), 0.3), small_web_jobs());
  const auto canary = ScenarioRunner::run(
      base_config(recovery::StrategyConfig::canary_full(), 0.3),
      small_web_jobs());
  EXPECT_LT(canary.total_recovery_s, retry.total_recovery_s * 0.5);
  EXPECT_LT(canary.makespan_s, retry.makespan_s);
}

TEST(ScenarioRunnerTest, RetryRecoveryGrowsWithErrorRate) {
  double last = 0.0;
  for (const double rate : {0.1, 0.3, 0.5}) {
    const auto result = ScenarioRunner::run(
        base_config(recovery::StrategyConfig::retry(), rate),
        small_web_jobs(40));
    EXPECT_GT(result.total_recovery_s, last);
    last = result.total_recovery_s;
  }
}

TEST(ScenarioRunnerTest, CanaryRecoveryStaysFlat) {
  // Paper Fig. 4/6: Canary's recovery stays "fairly constant" and close
  // to ideal while retry grows linearly.
  const auto low = ScenarioRunner::run(
      base_config(recovery::StrategyConfig::canary_full(), 0.1),
      small_web_jobs(40));
  const auto high = ScenarioRunner::run(
      base_config(recovery::StrategyConfig::canary_full(), 0.5),
      small_web_jobs(40));
  const auto retry_high = ScenarioRunner::run(
      base_config(recovery::StrategyConfig::retry(), 0.5), small_web_jobs(40));
  // Canary at 50% errors still recovers far faster than retry at 50%.
  EXPECT_LT(high.total_recovery_s, retry_high.total_recovery_s * 0.4);
  // Per-failure recovery cost is stable across error rates.
  EXPECT_LT(high.mean_recovery_s, low.mean_recovery_s * 2.5 + 0.5);
}

TEST(ScenarioRunnerTest, NodeFailuresHandled) {
  auto config = base_config(recovery::StrategyConfig::canary_full(), 0.1);
  config.node_failure_offsets = {Duration::sec(3.0), Duration::sec(6.0)};
  const auto result = ScenarioRunner::run(config, small_web_jobs(30));
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.counters.at("node_failures"), 1.0);
}

TEST(ScenarioRunnerTest, RrAndAsCostMoreThanCanary) {
  // Paper Fig. 10: RR and AS cost up to 2.7x / 2.8x Canary.
  const auto canary = ScenarioRunner::run(
      base_config(recovery::StrategyConfig::canary_full(), 0.2),
      small_web_jobs(30));
  const auto rr = ScenarioRunner::run(
      base_config(recovery::StrategyConfig::request_replication(1), 0.2),
      small_web_jobs(30));
  const auto as = ScenarioRunner::run(
      base_config(recovery::StrategyConfig::active_standby(), 0.2),
      small_web_jobs(30));
  EXPECT_GT(rr.cost_usd, canary.cost_usd * 1.3);
  EXPECT_GT(as.cost_usd, canary.cost_usd * 1.1);
}

TEST(ScenarioRunnerTest, StorageHierarchyOverrideChangesCheckpointCosts) {
  // DL checkpoints spill; an NFS-only hierarchy makes every spill ~35x
  // slower than the testbed's ramdisk, which must show up in makespan.
  const std::vector<faas::JobSpec> jobs = {
      workloads::make_job(workloads::WorkloadKind::kDlTraining, 20)};
  auto config = base_config(recovery::StrategyConfig::canary_full(), 0.0);
  const auto testbed = ScenarioRunner::run(config, jobs);
  config.storage = cluster::StorageHierarchy({
      {cluster::StorageTier::kKvStore, Duration::usec(500), 900.0, 1200.0,
       Bytes::gib(8), true, true},
      {cluster::StorageTier::kNfs, Duration::msec(1), 110.0, 160.0,
       Bytes::gib(1024), true, true},
  });
  const auto lean = ScenarioRunner::run(config, jobs);
  EXPECT_TRUE(lean.completed);
  EXPECT_GT(lean.makespan_s, testbed.makespan_s + 1.0);
}

// ---- repetitions ---------------------------------------------------------

TEST(ExperimentTest, RepetitionsAggregate) {
  const auto agg =
      run_repetitions(base_config(recovery::StrategyConfig::retry(), 0.3),
                      small_web_jobs(), 5);
  EXPECT_EQ(agg.makespan_s.count(), 5u);
  EXPECT_EQ(agg.incomplete_runs, 0u);
  EXPECT_GT(agg.total_recovery_s.mean(), 0.0);
  EXPECT_GT(agg.failures.mean(), 0.0);
}

TEST(ExperimentTest, RepetitionsAreReproducible) {
  const auto config = base_config(recovery::StrategyConfig::canary_full(), 0.3);
  const auto a = run_repetitions(config, small_web_jobs(), 4);
  const auto b = run_repetitions(config, small_web_jobs(), 4);
  EXPECT_EQ(a.makespan_s.mean(), b.makespan_s.mean());
  EXPECT_EQ(a.cost_usd.mean(), b.cost_usd.mean());
}

TEST(ExperimentTest, RepetitionsVaryAcrossSeeds) {
  const auto agg =
      run_repetitions(base_config(recovery::StrategyConfig::retry(), 0.3),
                      small_web_jobs(), 6);
  EXPECT_GT(agg.total_recovery_s.stddev(), 0.0);
}

TEST(ExperimentTest, HelperMath) {
  EXPECT_DOUBLE_EQ(reduction_pct(10.0, 2.0), 80.0);
  EXPECT_DOUBLE_EQ(overhead_pct(10.0, 11.0), 10.0);
  EXPECT_DOUBLE_EQ(reduction_pct(0.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(overhead_pct(0.0, 5.0), 0.0);
}

}  // namespace
}  // namespace canary::harness
