// Causal-trace tests: the per-invocation event DAG (obs::EventLog wired
// through faas::Platform), the recovery critical-path decomposition, the
// SLO watchdog, and the chrome-trace flow export. The chains under test
// are the ones the paper's recovery analysis depends on: cold start,
// warm-pool reuse, retry re-attempts, request replication (shared trace)
// and node-failure recovery.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/network.hpp"
#include "common/logging.hpp"
#include "faas/platform.hpp"
#include "faas/retry.hpp"
#include "harness/scenario.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/critical_path.hpp"
#include "obs/event_log.hpp"
#include "obs/metric_registry.hpp"
#include "obs/slo_monitor.hpp"
#include "recovery/strategies.hpp"
#include "sim/simulator.hpp"

namespace canary::faas {
namespace {

std::vector<cluster::NodeSpec> uniform_nodes(std::size_t n) {
  std::vector<cluster::NodeSpec> specs(n);
  for (auto& s : specs) s.cpu = cluster::CpuClass::kXeonGold6242;
  return specs;
}

FunctionSpec simple_function(std::size_t states = 2,
                             Duration state_dur = Duration::sec(1.0)) {
  FunctionSpec fn;
  fn.name = "fn";
  fn.runtime = RuntimeImage::kPython3;
  for (std::size_t i = 0; i < states; ++i) fn.states.push_back({state_dur, {}});
  fn.finalize = Duration::msec(500);
  return fn;
}

/// Kills attempt `attempt_to_kill` of every function at a fixed offset.
class FixedKillPolicy : public FailurePolicy {
 public:
  FixedKillPolicy(int attempt_to_kill, Duration offset)
      : attempt_(attempt_to_kill), offset_(offset) {}
  std::optional<Duration> plan_kill(const Invocation&, int attempt,
                                    Duration) override {
    if (attempt == attempt_) return offset_;
    return std::nullopt;
  }

 private:
  int attempt_;
  Duration offset_;
};

/// Platform fixture with the causal event log and SLO watchdog installed.
class TraceTest : public ::testing::Test {
 protected:
  explicit TraceTest(std::size_t nodes = 2)
      : cluster_(uniform_nodes(nodes)), network_(&cluster_, {}) {}

  Platform& make_platform(PlatformConfig config = {}) {
    config.scheduler_overhead = Duration::zero();
    platform_.emplace(sim_, cluster_, network_, config, metrics_);
    platform_->set_event_log(&events_);
    platform_->set_slo_monitor(&slo_);
    retry_.emplace(*platform_);
    platform_->set_recovery_handler(&*retry_);
    return *platform_;
  }

  JobId submit_one(Platform& p, FunctionSpec fn) {
    JobSpec job;
    job.name = "job";
    job.functions.push_back(std::move(fn));
    auto result = p.submit_job(std::move(job));
    EXPECT_TRUE(result.ok());
    return result.value();
  }

  /// Events attributed to `fn`, in log (== time) order.
  std::vector<const obs::Event*> events_of(FunctionId fn) const {
    std::vector<const obs::Event*> out;
    for (const auto& e : events_.events()) {
      if (e.labels.function == fn) out.push_back(&e);
    }
    return out;
  }

  const obs::Event* first_of(obs::EventKind kind) const {
    for (const auto& e : events_.events()) {
      if (e.kind == kind) return &e;
    }
    return nullptr;
  }

  /// Asserts `evs` is one unbroken parent chain on a single trace.
  void expect_chain(const std::vector<const obs::Event*>& evs) {
    ASSERT_FALSE(evs.empty());
    EXPECT_TRUE(evs.front()->trace.valid());
    for (std::size_t i = 1; i < evs.size(); ++i) {
      EXPECT_EQ(evs[i]->parent, evs[i - 1]->id)
          << "broken chain at '" << evs[i]->name << "'";
      EXPECT_EQ(evs[i]->trace, evs.front()->trace);
    }
  }

  static std::vector<obs::EventKind> kinds(
      const std::vector<const obs::Event*>& evs) {
    std::vector<obs::EventKind> out;
    for (const auto* e : evs) out.push_back(e->kind);
    return out;
  }

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::NetworkModel network_;
  obs::MetricRegistry metrics_;
  obs::EventLog events_;
  obs::SloMonitor slo_;
  std::optional<Platform> platform_;
  std::optional<RetryHandler> retry_;
};

TEST_F(TraceTest, ColdStartProducesOneLinearChain) {
  auto& p = make_platform();
  const JobId job = submit_one(p, simple_function());
  sim_.run();
  ASSERT_TRUE(p.job_completed(job));

  const FunctionId fid = p.job_functions(job).front();
  const auto evs = events_of(fid);
  expect_chain(evs);
  using K = obs::EventKind;
  EXPECT_EQ(kinds(evs),
            (std::vector<K>{K::kSubmit, K::kLaunch, K::kInit, K::kExec,
                            K::kStateCommit, K::kStateCommit, K::kFinalize,
                            K::kComplete}));
  // The submit event is the chain root, named after the spec.
  EXPECT_EQ(evs.front()->parent, obs::kNoEvent);
  EXPECT_EQ(evs.front()->name, "fn");
  // The invocation's public view carries its trace position.
  EXPECT_EQ(p.invocation(fid).trace.trace, evs.front()->trace);
  EXPECT_EQ(p.invocation(fid).trace.last, evs.back()->id);
}

TEST_F(TraceTest, WarmPoolReuseKeepsTheChainAndSkipsLaunch) {
  PlatformConfig config;
  config.reuse_containers = true;
  auto& p = make_platform(config);

  JobSpec job;
  job.name = "job";
  job.functions.push_back(simple_function(1));
  FunctionSpec second = simple_function(1);
  second.depends_on = {0};  // runs after fn 0, adopts its pooled container
  job.functions.push_back(std::move(second));
  const auto id = p.submit_job(std::move(job));
  ASSERT_TRUE(id.ok());
  sim_.run();
  ASSERT_TRUE(p.job_completed(id.value()));

  const FunctionId warm_fid = p.job_functions(id.value())[1];
  const auto evs = events_of(warm_fid);
  expect_chain(evs);
  using K = obs::EventKind;
  // Warm adoption: no launch/init events, a kRestore("warm_dispatch")
  // dispatch instead — and the causal chain survives the reuse.
  EXPECT_EQ(kinds(evs),
            (std::vector<K>{K::kSubmit, K::kRestore, K::kExec, K::kStateCommit,
                            K::kFinalize, K::kComplete}));
  EXPECT_EQ(evs[1]->name, "warm_dispatch");
}

TEST_F(TraceTest, RetryReattemptStaysOnTheFailureChain) {
  FixedKillPolicy kill_first(1, Duration::msec(500));
  auto& p = make_platform();
  p.set_failure_policy(&kill_first);
  const JobId job = submit_one(p, simple_function());
  sim_.run();
  ASSERT_TRUE(p.job_completed(job));

  const FunctionId fid = p.job_functions(job).front();
  const auto evs = events_of(fid);
  expect_chain(evs);

  using K = obs::EventKind;
  const obs::Event* failure = nullptr;
  const obs::Event* detect = nullptr;
  const obs::Event* action = nullptr;
  const obs::Event* recovered = nullptr;
  std::size_t launches = 0;
  for (const auto* e : evs) {
    if (e->kind == K::kFailure && failure == nullptr) failure = e;
    if (e->kind == K::kDetect && detect == nullptr) detect = e;
    if (e->kind == K::kRecoveryAction && action == nullptr) action = e;
    if (e->kind == K::kRecovered) recovered = e;
    if (e->kind == K::kLaunch) ++launches;
  }
  ASSERT_NE(failure, nullptr);
  ASSERT_NE(detect, nullptr);
  ASSERT_NE(action, nullptr);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(action->name, "retry_restart");
  EXPECT_EQ(launches, 2u);  // killed cold start + retry cold start
  // Detection lags the failure by the configured detect delay.
  EXPECT_EQ((detect->at - failure->at).count_usec(),
            PlatformConfig{}.failure_detect_delay.count_usec());
  // The regained-work event points its cause edge back at the failure.
  EXPECT_EQ(recovered->cause, failure->id);
  EXPECT_EQ(evs.back()->kind, K::kComplete);
}

TEST_F(TraceTest, NodeFailureIsTheCauseOfItsVictims) {
  auto& p = make_platform();
  const JobId job = submit_one(p, simple_function());
  const FunctionId fid = p.job_functions(job).front();
  sim_.schedule_after(Duration::sec(1.0), [&] {
    p.fail_node(p.invocation(fid).node);
  });
  sim_.run();
  ASSERT_TRUE(p.job_completed(job));  // retried on the surviving node

  const obs::Event* node_failure = first_of(obs::EventKind::kNodeFailure);
  ASSERT_NE(node_failure, nullptr);
  EXPECT_EQ(node_failure->parent, obs::kNoEvent);  // ambient root event
  EXPECT_EQ(events_.count_of(obs::EventKind::kNodeFailure), 1u);

  const auto evs = events_of(fid);
  const obs::Event* failure = nullptr;
  const obs::Event* recovered = nullptr;
  for (const auto* e : evs) {
    if (e->kind == obs::EventKind::kFailure && failure == nullptr) failure = e;
    if (e->kind == obs::EventKind::kRecovered) recovered = e;
  }
  ASSERT_NE(failure, nullptr);
  ASSERT_NE(recovered, nullptr);
  // Victim kill <- node failure, regained work <- the kill: the full
  // failure-to-recovery path is linked through cause edges.
  EXPECT_EQ(failure->cause, node_failure->id);
  EXPECT_NE(failure->trace, node_failure->trace);
  EXPECT_EQ(recovered->cause, failure->id);

  // The chrome exporter renders each cause edge as an s/f flow pair
  // (shared name + "causal" category + effect id).
  std::ostringstream trace_json;
  obs::write_chrome_trace(trace_json, nullptr, &events_);
  const std::string out = trace_json.str();
  std::size_t causal = 0;
  for (std::size_t pos = out.find("causal"); pos != std::string::npos;
       pos = out.find("causal", pos + 1)) {
    ++causal;
  }
  EXPECT_EQ(causal, 4u);  // two flow edges, two records each
  EXPECT_NE(out.find("\"bp\""), std::string::npos);
  EXPECT_NE(out.find("node_failure"), std::string::npos);
}

TEST_F(TraceTest, SloWatchdogRecordsBreachOnline) {
  auto& p = make_platform();
  JobSpec job;
  job.name = "job";
  FunctionSpec breached = simple_function();  // completes at 3.3 s
  breached.name = "tight";
  breached.sla = Duration::sec(1.0);
  FunctionSpec met = simple_function();
  met.name = "loose";
  met.sla = Duration::sec(10.0);
  job.functions.push_back(std::move(breached));
  job.functions.push_back(std::move(met));
  const auto id = p.submit_job(std::move(job));
  ASSERT_TRUE(id.ok());
  sim_.run();
  ASSERT_TRUE(p.job_completed(id.value()));

  EXPECT_EQ(slo_.targets(), 2u);
  EXPECT_EQ(slo_.violations(), 1u);
  EXPECT_DOUBLE_EQ(slo_.violation_ratio(), 0.5);
  ASSERT_EQ(slo_.breaches().size(), 1u);
  EXPECT_EQ(slo_.breaches().front().first, p.job_functions(id.value())[0]);
  // The breach fires at the deadline, as a DAG event on the chain.
  EXPECT_EQ(slo_.breaches().front().second.count_usec(), 1'000'000);
  EXPECT_EQ(events_.count_of(obs::EventKind::kSlaViolation), 1u);

  // The analyzer attributes the breach to the dominant component.
  obs::CriticalPathAnalyzer analyzer(events_);
  const obs::BreakdownReport report = analyzer.report(slo_.targets());
  EXPECT_EQ(report.slo_targets, 2u);
  EXPECT_EQ(report.slo_violations, 1u);
  std::uint64_t attributed = 0;
  for (const auto& [component, count] : report.slo_breaches_by_component) {
    attributed += count;
  }
  EXPECT_EQ(attributed, 1u);
}

TEST_F(TraceTest, LogClockPrefixesAndMirrorsWarnings) {
  set_log_threshold(LogLevel::kWarn);
  ScopedLogClock clock([] { return std::int64_t{1'500'000}; });
  EXPECT_EQ(detail::log_time_prefix(), "[t=1.500000s] ");

  std::vector<std::pair<LogLevel, std::string>> mirrored;
  ScopedLogMirror mirror([&](LogLevel level, const std::string& msg) {
    mirrored.emplace_back(level, msg);
  });
  CANARY_LOG_WARN("trace-mirror-check " << 42);
  CANARY_LOG_INFO("below-threshold");  // kInfo < kWarn: not emitted
  ASSERT_EQ(mirrored.size(), 1u);
  EXPECT_EQ(mirrored.front().first, LogLevel::kWarn);
  EXPECT_NE(mirrored.front().second.find("trace-mirror-check 42"),
            std::string::npos);
}

TEST(EventLogTest, OverflowIsCountedAndLeavesContextsIntact) {
  obs::EventLog log(2);
  obs::TraceContext ctx{log.new_trace()};
  const obs::EventId first =
      log.extend(ctx, obs::EventKind::kSubmit, "a", TimePoint::origin());
  const obs::EventId second =
      log.extend(ctx, obs::EventKind::kLaunch, "b", TimePoint::origin());
  EXPECT_NE(first, obs::kNoEvent);
  EXPECT_NE(second, obs::kNoEvent);
  EXPECT_EQ(ctx.last, second);
  EXPECT_FALSE(log.truncated());

  // Past the cap every append shape drops, counts, and returns kNoEvent;
  // extend leaves the context where it was.
  EXPECT_EQ(log.extend(ctx, obs::EventKind::kExec, "c", TimePoint::origin()),
            obs::kNoEvent);
  EXPECT_EQ(ctx.last, second);
  EXPECT_EQ(log.append(ctx, obs::EventKind::kCheckpoint, "d", TimePoint::origin()),
            obs::kNoEvent);
  EXPECT_EQ(log.append_raw(log.new_trace(), obs::kNoEvent,
                           obs::EventKind::kAnnotation, "e", TimePoint::origin()),
            obs::kNoEvent);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped(), 3u);
  EXPECT_TRUE(log.truncated());
}

TEST(EventLogTest, FlightRecorderDumpsOnNodeFailure) {
  const std::string prefix = "obs_trace_test_flight";
  obs::EventLog log;
  log.set_flight_recorder(prefix, /*max_dumps=*/1, /*tail=*/4);
  obs::TraceContext ctx{log.new_trace()};
  log.extend(ctx, obs::EventKind::kSubmit, "fn", TimePoint::origin());
  log.append_raw(log.new_trace(), obs::kNoEvent, obs::EventKind::kNodeFailure,
                 "node_failure", TimePoint::origin());
  EXPECT_EQ(log.flight_dumps_written(), 1u);
  // Capped: a second trigger does not write another dump.
  log.append_raw(log.new_trace(), obs::kNoEvent, obs::EventKind::kNodeFailure,
                 "node_failure", TimePoint::origin());
  EXPECT_EQ(log.flight_dumps_written(), 1u);

  const std::string path = prefix + ".0.json";
  std::ifstream dump(path);
  ASSERT_TRUE(dump.good());
  std::stringstream content;
  content << dump.rdbuf();
  EXPECT_NE(content.str().find("node_failure"), std::string::npos);
  dump.close();
  std::remove(path.c_str());
}

TEST(QueueingAttributionTest, PreAdmissionWaitIsQueueingNotScheduling) {
  // An open-loop arrival that waited 5 s in admission control before the
  // platform saw it: the wait must land in the `queueing` component and a
  // breach during that era must blame queueing, not scheduling.
  obs::EventLog log;
  obs::TraceContext ctx{log.new_trace()};
  obs::SpanLabels labels;
  labels.function = FunctionId{1};
  const TimePoint t0 = TimePoint::origin();
  const auto at = [t0](double s) { return t0 + Duration::sec(s); };
  log.extend(ctx, obs::EventKind::kQueued, "web-1", at(0.0), labels);
  log.extend(ctx, obs::EventKind::kSubmit, "web-1", at(5.0), labels);
  log.extend(ctx, obs::EventKind::kLaunch, "web-1", at(5.5), labels);
  log.extend(ctx, obs::EventKind::kInit, "web-1", at(6.0), labels);
  log.extend(ctx, obs::EventKind::kExec, "web-1", at(6.5), labels);
  log.extend(ctx, obs::EventKind::kSlaViolation, "web-1", at(7.0), labels);
  log.extend(ctx, obs::EventKind::kFinalize, "web-1", at(8.0), labels);
  log.extend(ctx, obs::EventKind::kComplete, "web-1", at(8.5), labels);

  obs::CriticalPathAnalyzer analyzer(log);
  const obs::BreakdownReport report = analyzer.report(/*slo_targets=*/1);
  const obs::ComponentSums& e2e = report.end_to_end_components;
  EXPECT_NEAR(e2e[obs::PathComponent::kQueueing], 5.0, 1e-9);
  EXPECT_NEAR(e2e[obs::PathComponent::kScheduling], 0.5, 1e-9);
  EXPECT_NEAR(e2e[obs::PathComponent::kExec], 1.5, 1e-9);
  EXPECT_NEAR(e2e.total(), 8.5, 1e-9);
  // The family groups under the stream's base name, stripped of "-1".
  ASSERT_EQ(report.per_function.count("web"), 1u);
  // Breach attribution: queueing dominated submission-to-breach.
  EXPECT_EQ(report.slo_violations, 1u);
  ASSERT_EQ(report.slo_breaches_by_component.count("queueing"), 1u);
  EXPECT_EQ(report.slo_breaches_by_component.at("queueing"), 1u);
}

TEST(QueueingAttributionTest, ShedChainTerminatesWithoutAttribution) {
  // A shed arrival's chain is kQueued -> kShed; nothing after the shed
  // instant may be attributed to any component.
  obs::EventLog log;
  obs::TraceContext ctx{log.new_trace()};
  obs::SpanLabels labels;
  labels.function = FunctionId{2};
  log.extend(ctx, obs::EventKind::kQueued, "web-2", TimePoint::origin(),
             labels);
  log.extend(ctx, obs::EventKind::kShed, "web-2",
             TimePoint::origin() + Duration::sec(2.0), labels);
  obs::CriticalPathAnalyzer analyzer(log);
  const obs::BreakdownReport report = analyzer.report();
  EXPECT_NEAR(report.end_to_end_components[obs::PathComponent::kQueueing], 2.0,
              1e-9);
  EXPECT_NEAR(report.end_to_end_components.total(), 2.0, 1e-9);
}

TEST(TraceScenarioTest, RequestReplicationSharesOneTracePerGroup) {
  harness::ScenarioConfig config;
  config.strategy = recovery::StrategyConfig::request_replication(1);
  config.error_rate = 0.0;
  config.cluster_nodes = 4;
  config.seed = 7;

  JobSpec job;
  job.name = "rr";
  for (int i = 0; i < 3; ++i) job.functions.push_back(simple_function(1));
  const auto result = harness::ScenarioRunner::run(config, {job});
  ASSERT_TRUE(result.completed);
  ASSERT_NE(result.events, nullptr);

  // 3 logical requests -> 6 submitted members (primary + shadow), but the
  // shadows are rebound onto their primary's trace: 3 distinct traces,
  // each with exactly two submit events.
  std::map<obs::TraceId, int> submits_per_trace;
  for (const auto& e : result.events->events()) {
    if (e.kind == obs::EventKind::kSubmit) ++submits_per_trace[e.trace];
  }
  std::size_t total = 0;
  for (const auto& [trace, count] : submits_per_trace) {
    EXPECT_EQ(count, 2) << "replica group not merged into one trace";
    total += static_cast<std::size_t>(count);
  }
  EXPECT_EQ(submits_per_trace.size(), 3u);
  EXPECT_EQ(total, 6u);
}

TEST(TraceScenarioTest, BreakdownComponentsPartitionEveryRecoveryWindow) {
  harness::ScenarioConfig config;
  config.strategy = recovery::StrategyConfig::retry();
  config.error_rate = 0.3;
  config.cluster_nodes = 4;
  config.seed = 20220101;

  JobSpec job;
  job.name = "sweep";
  for (int i = 0; i < 20; ++i) job.functions.push_back(simple_function());
  const auto result = harness::ScenarioRunner::run(config, {job});
  ASSERT_TRUE(result.completed);
  ASSERT_NE(result.events, nullptr);
  ASSERT_GT(result.failures, 0.0);

  // Acceptance bound: detection + scheduling + launch + init + restore +
  // re-exec must equal each failure-to-recovery window within 1 sim-ms.
  obs::CriticalPathAnalyzer analyzer(*result.events);
  ASSERT_FALSE(analyzer.recovery_windows().empty());
  for (const auto& window : analyzer.recovery_windows()) {
    EXPECT_NEAR(window.components.total(), window.window().to_seconds(), 1e-3)
        << "window of function " << window.function.value();
    EXPECT_DOUBLE_EQ(window.components[obs::PathComponent::kExec], 0.0);
    EXPECT_DOUBLE_EQ(window.components[obs::PathComponent::kFinalize], 0.0);
  }
  // And the aggregated report preserves the partition.
  EXPECT_EQ(result.breakdown.recovery_count,
            analyzer.recovery_windows().size());
  EXPECT_NEAR(result.breakdown.recovery_components.total(),
              result.breakdown.recovery_window_s,
              1e-3 * static_cast<double>(result.breakdown.recovery_count));

  // Recorder health plumbing: everything recorded, nothing dropped.
  EXPECT_EQ(result.events_recorded, result.events->size());
  EXPECT_EQ(result.events_dropped, 0u);
  EXPECT_FALSE(result.events->truncated());
}

}  // namespace
}  // namespace canary::faas
