// Unit tests for the state-of-the-art baselines: request replication (RR)
// and active-standby (AS), plus the strategy configuration helpers.
#include <gtest/gtest.h>

#include <optional>

#include "cluster/network.hpp"
#include "recovery/active_standby.hpp"
#include "recovery/request_replication.hpp"
#include "recovery/strategies.hpp"

namespace canary::recovery {
namespace {

std::vector<cluster::NodeSpec> uniform_nodes(std::size_t n) {
  std::vector<cluster::NodeSpec> specs(n);
  for (auto& s : specs) s.cpu = cluster::CpuClass::kXeonGold6242;
  return specs;
}

faas::FunctionSpec probe() {
  faas::FunctionSpec fn;
  fn.name = "p";
  fn.runtime = faas::RuntimeImage::kPython3;
  fn.states.push_back({Duration::sec(1.0), {}});
  fn.states.push_back({Duration::sec(1.0), {}});
  fn.finalize = Duration::msec(100);
  return fn;
}

class KillSet : public faas::FailurePolicy {
 public:
  void kill(FunctionId id, int attempt, Duration offset) {
    plans_.push_back({id, attempt, offset});
  }
  std::optional<Duration> plan_kill(const faas::Invocation& inv, int attempt,
                                    Duration) override {
    for (const auto& plan : plans_) {
      if (plan.id == inv.id && plan.attempt == attempt) return plan.offset;
    }
    return std::nullopt;
  }

 private:
  struct Plan {
    FunctionId id;
    int attempt;
    Duration offset;
  };
  std::vector<Plan> plans_;
};

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() : cluster_(uniform_nodes(4)), network_(&cluster_, {}) {
    faas::PlatformConfig config;
    config.scheduler_overhead = Duration::zero();
    platform_.emplace(sim_, cluster_, network_, config, metrics_);
    platform_->set_failure_policy(&kills_);
  }

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::NetworkModel network_;
  obs::MetricRegistry metrics_;
  KillSet kills_;
  std::optional<faas::Platform> platform_;
};

// ---- request replication -----------------------------------------------

TEST_F(BaselineTest, RrExpandJobShape) {
  RequestReplicationHandler rr(*platform_, 2);
  faas::JobSpec logical;
  logical.name = "web";
  logical.functions.push_back(probe());
  logical.functions.push_back(probe());
  const auto expanded = rr.expand_job(logical);
  EXPECT_EQ(expanded.functions.size(), 6u);
  EXPECT_EQ(expanded.name, "web+rr");
  EXPECT_EQ(expanded.functions[0].name, "p");
  EXPECT_EQ(expanded.functions[1].name, "p+r1");
  EXPECT_EQ(expanded.functions[2].name, "p+r2");
}

TEST_F(BaselineTest, RrFirstWinnerDiscardsLosers) {
  RequestReplicationHandler rr(*platform_, 1);
  platform_->set_recovery_handler(&rr);
  platform_->add_observer(&rr);

  faas::JobSpec logical;
  logical.functions.push_back(probe());
  const auto id = platform_->submit_job(rr.expand_job(logical));
  ASSERT_TRUE(id.ok());
  rr.track_job(id.value());
  sim_.run();

  EXPECT_TRUE(platform_->job_completed(id.value()));
  EXPECT_EQ(metrics_.counter("rr_group_wins"), 1.0);
  EXPECT_EQ(metrics_.counter("functions_discarded"), 1.0);
  EXPECT_NE(rr.group_completion(id.value(), 0), TimePoint::max());
}

TEST_F(BaselineTest, RrSurvivesSingleInstanceFailure) {
  RequestReplicationHandler rr(*platform_, 1);
  platform_->set_recovery_handler(&rr);
  platform_->add_observer(&rr);

  faas::JobSpec logical;
  logical.functions.push_back(probe());
  const auto expanded = rr.expand_job(logical);
  const auto id = platform_->submit_job(expanded);
  ASSERT_TRUE(id.ok());
  rr.track_job(id.value());
  // Kill the primary instance; the replica finishes the request without a
  // restart.
  kills_.kill(platform_->job_functions(id.value())[0], 1, Duration::sec(1.5));
  sim_.run();

  EXPECT_TRUE(platform_->job_completed(id.value()));
  EXPECT_EQ(metrics_.counter("rr_group_restarts"), 0.0);
  EXPECT_EQ(metrics_.counter("rr_group_wins"), 1.0);
  // Completion at the replica's natural pace: 0.8 + 2.0 + 0.1 = 2.9s.
  EXPECT_NEAR(rr.group_completion(id.value(), 0).to_seconds(), 2.9, 0.05);
}

TEST_F(BaselineTest, RrRestartsWholeGroupWhenAllDown) {
  RequestReplicationHandler rr(*platform_, 1);
  platform_->set_recovery_handler(&rr);
  platform_->add_observer(&rr);

  faas::JobSpec logical;
  logical.functions.push_back(probe());
  const auto id = platform_->submit_job(rr.expand_job(logical));
  ASSERT_TRUE(id.ok());
  rr.track_job(id.value());
  // Both instances die; the whole request restarts from the beginning.
  kills_.kill(platform_->job_functions(id.value())[0], 1, Duration::sec(1.0));
  kills_.kill(platform_->job_functions(id.value())[1], 1, Duration::sec(1.2));
  sim_.run();

  EXPECT_TRUE(platform_->job_completed(id.value()));
  EXPECT_EQ(metrics_.counter("rr_group_restarts"), 1.0);
  // Restart happened after the second failure: completion > 3.9s.
  EXPECT_GT(rr.group_completion(id.value(), 0).to_seconds(), 3.5);
}

TEST_F(BaselineTest, RrLateLoserFailureIsIgnored) {
  RequestReplicationHandler rr(*platform_, 1);
  platform_->set_recovery_handler(&rr);
  platform_->add_observer(&rr);

  faas::JobSpec logical;
  logical.functions.push_back(probe());
  const auto id = platform_->submit_job(rr.expand_job(logical));
  ASSERT_TRUE(id.ok());
  rr.track_job(id.value());
  sim_.run();
  // Post-completion failure reports must not restart anything.
  const auto& inv = platform_->invocation(platform_->job_functions(id.value())[1]);
  rr.on_failure(inv, {});
  EXPECT_EQ(metrics_.counter("rr_group_restarts"), 0.0);
}

// ---- active-standby --------------------------------------------------------

TEST_F(BaselineTest, AsProvisionsStandbysAtSubmission) {
  ActiveStandbyHandler as(*platform_);
  platform_->set_recovery_handler(&as);
  platform_->add_observer(&as);

  faas::JobSpec job;
  job.functions.push_back(probe());
  job.functions.push_back(probe());
  const auto id = platform_->submit_job(job);
  ASSERT_TRUE(id.ok());
  sim_.run_until(TimePoint::origin() + Duration::sec(1.5));
  EXPECT_EQ(as.ready_standbys(), 2u);
  sim_.run();
  EXPECT_TRUE(platform_->job_completed(id.value()));
  // Standbys were torn down at completion.
  EXPECT_EQ(as.ready_standbys(), 0u);
  EXPECT_EQ(platform_->warm_container_count(faas::RuntimeImage::kPython3), 0u);
}

TEST_F(BaselineTest, AsActivatesStandbyOnFailure) {
  ActiveStandbyHandler as(*platform_);
  platform_->set_recovery_handler(&as);
  platform_->add_observer(&as);

  faas::JobSpec job;
  job.functions.push_back(probe());
  const auto id = platform_->submit_job(job);
  ASSERT_TRUE(id.ok());
  const FunctionId fn = platform_->job_functions(id.value()).front();
  // Kill well after the standby is warm.
  kills_.kill(fn, 1, Duration::sec(2.0));
  sim_.run();

  EXPECT_TRUE(platform_->job_completed(id.value()));
  EXPECT_EQ(metrics_.counter("as_standby_activations"), 1.0);
  EXPECT_EQ(metrics_.counter("as_cold_restarts"), 0.0);
  const auto& inv = platform_->invocation(fn);
  EXPECT_EQ(inv.attempt, 2);
  // AS restarts from the beginning (no checkpoints): all completed work
  // was lost.
  EXPECT_GT(inv.lost_work.to_seconds(), 0.9);
}

TEST_F(BaselineTest, AsFallsBackColdWhenStandbyNotReady) {
  ActiveStandbyHandler as(*platform_);
  platform_->set_recovery_handler(&as);
  platform_->add_observer(&as);

  faas::JobSpec job;
  job.functions.push_back(probe());
  const auto id = platform_->submit_job(job);
  ASSERT_TRUE(id.ok());
  const FunctionId fn = platform_->job_functions(id.value()).front();
  // Kill while the standby is still launching (standby warm at ~0.8s,
  // detection adds 0.3s: kill at 0.2 => failure handled at 0.5s).
  kills_.kill(fn, 1, Duration::msec(200));
  sim_.run();

  EXPECT_TRUE(platform_->job_completed(id.value()));
  EXPECT_EQ(metrics_.counter("as_cold_restarts"), 1.0);
}

TEST_F(BaselineTest, AsReplacesStandbyLostToNodeFailure) {
  ActiveStandbyHandler as(*platform_);
  platform_->set_recovery_handler(&as);
  platform_->add_observer(&as);

  faas::JobSpec job;
  job.functions.push_back(probe());
  job.functions.front().states.assign(6, {Duration::sec(1.0), Bytes::zero()});
  const auto id = platform_->submit_job(job);
  ASSERT_TRUE(id.ok());
  const FunctionId fn = platform_->job_functions(id.value()).front();

  sim_.schedule_after(Duration::sec(1.5), [&] {
    // Kill the standby's node (not the active's).
    const NodeId active_node = platform_->invocation(fn).node;
    for (const NodeId node : cluster_.alive_node_ids()) {
      if (node == active_node) continue;
      if (!platform_->containers_on(node).empty()) {
        platform_->fail_node(node);
        return;
      }
    }
  });
  sim_.run();
  EXPECT_TRUE(platform_->job_completed(id.value()));
  // A replacement standby was provisioned after the node loss.
  EXPECT_GE(metrics_.counter("node_failures"), 1.0);
}

// ---- strategy config --------------------------------------------------------

TEST(StrategyConfigTest, Labels) {
  EXPECT_EQ(StrategyConfig::ideal().label(), "ideal");
  EXPECT_EQ(StrategyConfig::retry().label(), "retry");
  EXPECT_EQ(StrategyConfig::canary_full().label(), "canary-dr");
  EXPECT_EQ(StrategyConfig::canary_full(core::ReplicationMode::kAggressive).label(),
            "canary-ar");
  EXPECT_EQ(StrategyConfig::canary_full(core::ReplicationMode::kLenient).label(),
            "canary-lr");
  EXPECT_EQ(StrategyConfig::canary_replication_only().label(), "canary-repl");
  EXPECT_EQ(StrategyConfig::canary_checkpoint_only().label(), "canary-ckpt");
  EXPECT_EQ(StrategyConfig::request_replication().label(),
            "request-replication");
  EXPECT_EQ(StrategyConfig::active_standby().label(), "active-standby");
}

TEST(StrategyConfigTest, FactoryFlags) {
  const auto repl_only = StrategyConfig::canary_replication_only();
  EXPECT_FALSE(repl_only.canary.checkpointing.enabled);
  EXPECT_TRUE(repl_only.canary.replication.enabled);
  const auto ckpt_only = StrategyConfig::canary_checkpoint_only();
  EXPECT_TRUE(ckpt_only.canary.checkpointing.enabled);
  EXPECT_FALSE(ckpt_only.canary.replication.enabled);
  EXPECT_EQ(StrategyConfig::request_replication(3).rr_replicas, 3u);
}

}  // namespace
}  // namespace canary::recovery
