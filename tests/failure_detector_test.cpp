// Fault surface v2: heartbeat failure detection, the recovery watchdog,
// checkpoint-corruption fallback, and a mini chaos sweep. Detection
// latency here is emergent — produced by missed heartbeats crossing the
// phi thresholds, not by a configured constant.
#include <gtest/gtest.h>

#include <unordered_map>

#include "canary/checkpointing.hpp"
#include "cluster/network.hpp"
#include "harness/chaos.hpp"
#include "obs/event_log.hpp"
#include "workloads/workloads.hpp"

namespace canary::harness {
namespace {

std::vector<faas::JobSpec> small_web_jobs(std::size_t functions = 20) {
  return {workloads::make_job(workloads::WorkloadKind::kWebService, functions)};
}

ScenarioConfig detection_config(Duration heartbeat_interval) {
  ScenarioConfig config;
  config.strategy = recovery::StrategyConfig::canary_full();
  config.error_rate = 0.1;
  config.cluster_nodes = 8;
  config.seed = 1234;
  config.detection.enabled = true;
  config.detection.heartbeat_interval = heartbeat_interval;
  return config;
}

/// Worst node-failure confirmation latency observed in the causal log.
double max_node_detection_latency(const RunResult& result) {
  double worst = 0.0;
  std::unordered_map<std::uint64_t, TimePoint> open;
  for (const obs::Event& event : result.events->events()) {
    if (event.kind == obs::EventKind::kFailure &&
        event.name == "node_failure") {
      open[event.trace.value()] = event.at;
    } else if (event.kind == obs::EventKind::kDetect) {
      auto it = open.find(event.trace.value());
      if (it == open.end()) continue;
      const double latency = (event.at - it->second).to_seconds();
      open.erase(it);
      if (latency > worst) worst = latency;
    }
  }
  return worst;
}

/// Every function that completed did so exactly once.
void expect_exactly_once(const RunResult& result) {
  ASSERT_NE(result.events, nullptr);
  ASSERT_FALSE(result.events->truncated());
  std::unordered_map<std::uint64_t, int> completes;
  for (const obs::Event& event : result.events->events()) {
    if (event.kind == obs::EventKind::kComplete &&
        event.labels.function.valid()) {
      ++completes[event.labels.function.value()];
    }
  }
  EXPECT_GT(completes.size(), 0u);
  for (const auto& [fn, count] : completes) {
    EXPECT_EQ(count, 1) << "function " << fn << " completed " << count
                        << " times";
  }
}

TEST(FailureDetectorScenarioTest, HeartbeatModeRecoversNodeFailure) {
  auto config = detection_config(Duration::msec(500));
  config.node_failure_offsets = {Duration::sec(3.0)};
  const auto result = ScenarioRunner::run(config, small_web_jobs());
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.detector_confirmed_dead, 1u);
  EXPECT_EQ(result.undetected_failures, 0u);
  expect_exactly_once(result);
  // The confirmation must land within the analytic bound:
  // interval * (1 + timeout + confirm) + 2 sweeps.
  const auto& det = config.detection;
  const double bound =
      (det.heartbeat_interval *
           (1.0 + det.timeout_multiplier + det.confirm_multiplier) +
       det.sweep_interval * 2.0)
          .to_seconds();
  const double latency = max_node_detection_latency(result);
  EXPECT_GT(latency, 0.0);
  EXPECT_LE(latency, bound);
}

TEST(FailureDetectorScenarioTest, DetectionLatencyScalesWithInterval) {
  // Emergence check: halving the heartbeat cadence has to show up as a
  // proportionally later confirmation — a configured constant would not.
  auto fast = detection_config(Duration::msec(200));
  fast.node_failure_offsets = {Duration::sec(3.0)};
  auto slow = detection_config(Duration::msec(800));
  slow.node_failure_offsets = {Duration::sec(3.0)};
  const auto fast_result = ScenarioRunner::run(fast, small_web_jobs());
  const auto slow_result = ScenarioRunner::run(slow, small_web_jobs());
  ASSERT_TRUE(fast_result.completed);
  ASSERT_TRUE(slow_result.completed);
  const double fast_latency = max_node_detection_latency(fast_result);
  const double slow_latency = max_node_detection_latency(slow_result);
  ASSERT_GT(fast_latency, 0.0);
  EXPECT_GT(slow_latency, fast_latency);
  // The critical-path decomposition carries the emergent slice.
  EXPECT_GT(slow_result.breakdown
                .recovery_components[obs::PathComponent::kDetection],
            0.0);
}

TEST(FailureDetectorScenarioTest, FalseSuspicionCancelsCleanly) {
  // A delay window long enough to suspect a live worker but shorter than
  // the confirm threshold: the late beat un-suspects it, nobody is
  // fenced, and no function runs twice.
  auto config = detection_config(Duration::msec(500));
  config.detection.timeout_multiplier = 2.0;   // suspect after 1s gap
  config.detection.confirm_multiplier = 4.0;   // confirm after 3s gap
  config.error_rate = 0.0;
  ScenarioConfig::HeartbeatFaultCfg fault;
  fault.at = Duration::sec(2.0);
  fault.duration = Duration::sec(2.0);
  fault.delay = Duration::msec(1500);  // between the two thresholds
  fault.node = NodeId{3};
  config.heartbeat_faults.push_back(fault);
  const auto result = ScenarioRunner::run(config, small_web_jobs());
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.detector_false_suspicions, 1u);
  EXPECT_EQ(result.detector_confirmed_dead, 0u);
  EXPECT_GE(result.injected_heartbeats_delayed, 1u);
  expect_exactly_once(result);
}

TEST(FailureDetectorScenarioTest, AsymmetricPartitionFalseSuspicionHeals) {
  // One-way heartbeat loss from a live worker (fault surface v3): a
  // short asymmetric window cuts node 3's outbound traffic so its beats
  // are dropped at send, long enough to suspect it but shorter than the
  // confirm threshold. On heal the next beat must un-suspect it exactly
  // once — nobody fenced, nothing re-executed.
  auto config = detection_config(Duration::msec(500));
  config.detection.timeout_multiplier = 2.0;  // suspect after 1s gap
  config.detection.confirm_multiplier = 4.0;  // confirm after 3s gap
  config.error_rate = 0.0;
  ScenarioConfig::PartitionFault window;
  window.at = Duration::sec(2.0);
  window.duration = Duration::sec(2.0);  // max gap ~2.5s, between thresholds
  window.from = {NodeId{3}};
  for (std::size_t n = 1; n <= 8; ++n) {
    if (n != 3) window.to.push_back(NodeId{n});
  }
  config.partitions.push_back(window);
  const auto result = ScenarioRunner::run(config, small_web_jobs());
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.detector_false_suspicions, 1u);
  EXPECT_EQ(result.detector_confirmed_dead, 0u);
  EXPECT_GT(result.heartbeats_partition_dropped, 0u);
  EXPECT_EQ(result.injected_partitions, 1u);
  EXPECT_EQ(result.injected_partition_heals, 1u);
  EXPECT_EQ(result.partitions_active_end, 0u);
  EXPECT_EQ(result.counters.count("nodes_fenced_logical"), 0u);
  EXPECT_TRUE(result.metadata_views_consistent);
  expect_exactly_once(result);
}

TEST(FailureDetectorScenarioTest, AsymmetricPartitionConfirmsWithinBound) {
  // The same one-way loss held past the confirm threshold: the victim is
  // alive but unreachable, so the detector logically fences it. The
  // fence must land within the analytic heartbeat bound of the window
  // opening, and the run still resolves exactly-once (the zombie side's
  // work never double-commits).
  auto config = detection_config(Duration::msec(500));
  config.detection.timeout_multiplier = 2.0;
  config.detection.confirm_multiplier = 4.0;
  config.error_rate = 0.0;
  ScenarioConfig::PartitionFault window;
  window.at = Duration::sec(2.0);
  window.duration = Duration::sec(6.0);  // well past the 3s confirm gap
  window.from = {NodeId{3}};
  for (std::size_t n = 1; n <= 8; ++n) {
    if (n != 3) window.to.push_back(NodeId{n});
  }
  config.partitions.push_back(window);
  const auto result = ScenarioRunner::run(config, small_web_jobs());
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.detector_confirmed_dead, 1u);
  const auto fenced = result.counters.find("nodes_fenced_logical");
  ASSERT_NE(fenced, result.counters.end());
  EXPECT_GE(fenced->second, 1.0);
  // Fence latency from window open, against the same analytic bound as
  // a real node death: interval * (1 + timeout + confirm) + 2 sweeps.
  ASSERT_NE(result.events, nullptr);
  double fence_at = -1.0;
  for (const obs::Event& event : result.events->events()) {
    if (event.kind == obs::EventKind::kAnnotation &&
        event.name == "node_fenced") {
      fence_at = event.at.to_seconds();
      break;
    }
  }
  ASSERT_GE(fence_at, 0.0);
  const auto& det = config.detection;
  const double bound =
      (det.heartbeat_interval *
           (1.0 + det.timeout_multiplier + det.confirm_multiplier) +
       det.sweep_interval * 2.0)
          .to_seconds();
  const double latency = fence_at - window.at.to_seconds();
  EXPECT_GT(latency, 0.0);
  EXPECT_LE(latency, bound);
  EXPECT_EQ(result.undetected_failures, 0u);
  expect_exactly_once(result);
}

TEST(FailureDetectorScenarioTest, WatchdogReroutesStalledRecovery) {
  // A gray node stretches cold launches ~30x; recoveries dispatched onto
  // it blow the action timeout and must be rerouted elsewhere instead of
  // waiting out the slowdown.
  ScenarioConfig config;
  config.strategy = recovery::StrategyConfig::canary_full();
  config.strategy.canary.recovery_action_timeout = Duration::msec(500);
  config.error_rate = 1.0;  // every function loses its container once
  config.injection_mode = failure::InjectionMode::kOncePerFunction;
  config.cluster_nodes = 4;
  config.seed = 77;
  ScenarioConfig::GrayFailure gray;
  gray.at = Duration::sec(0.5);
  gray.duration = Duration::sec(40.0);
  gray.slowdown = 30.0;
  gray.node = NodeId{1};
  config.gray_failures.push_back(gray);
  const auto result = ScenarioRunner::run(config, small_web_jobs());
  EXPECT_TRUE(result.completed);
  const auto stalls = result.counters.find("recovery_stalls");
  ASSERT_NE(stalls, result.counters.end());
  EXPECT_GE(stalls->second, 1.0);
  expect_exactly_once(result);
}

TEST(FailureDetectorScenarioTest, DisabledDetectorLeavesRunUntouched) {
  // The v2 surface is opt-in: with detection off and no action timeout,
  // none of the new counters move (the byte-identity gate in CI depends
  // on this staying true).
  ScenarioConfig config;
  config.strategy = recovery::StrategyConfig::canary_full();
  config.error_rate = 0.2;
  config.cluster_nodes = 8;
  config.seed = 1234;
  config.node_failure_offsets = {Duration::sec(3.0)};
  const auto result = ScenarioRunner::run(config, small_web_jobs());
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.detector_suspicions, 0u);
  EXPECT_EQ(result.detector_confirmed_dead, 0u);
  EXPECT_EQ(result.undetected_failures, 0u);
  EXPECT_EQ(result.counters.count("recovery_stalls"), 0u);
  EXPECT_EQ(result.counters.count("nodes_fenced"), 0u);
}

TEST(ChaosSweepTest, MiniSweepHoldsAllInvariants) {
  // A handful of full chaos scenarios inline in the unit suite; the
  // 200+-seed campaign lives in bench/chaos_campaign.
  for (std::uint64_t seed = 4242; seed < 4248; ++seed) {
    const ChaosOutcome outcome = run_chaos_scenario(seed);
    EXPECT_TRUE(outcome.violations.empty())
        << "seed " << seed << ": " << outcome.violations.front();
    EXPECT_TRUE(outcome.completed) << "seed " << seed;
  }
}

TEST(ChaosSweepTest, ShardedMiniSweepHoldsAllInvariants) {
  // The fourth family: the same scenarios split over 4 partitions x 4
  // worker threads on the conservative parallel engine, all eight
  // oracles evaluated inside every partition. The 64-seed subset lives
  // in bench/chaos_campaign.
  for (std::uint64_t seed = 30001; seed < 30003; ++seed) {
    const ChaosOutcome outcome = run_sharded_chaos_scenario(seed);
    EXPECT_TRUE(outcome.violations.empty())
        << "seed " << seed << ": " << outcome.violations.front();
    EXPECT_TRUE(outcome.completed) << "seed " << seed;
  }
}

}  // namespace
}  // namespace canary::harness

namespace canary::core {
namespace {

class CorruptionFallbackTest : public ::testing::Test {
 protected:
  CorruptionFallbackTest()
      : cluster_(cluster::Cluster::testbed(4)),
        network_(&cluster_, {}),
        storage_(cluster::StorageHierarchy::testbed()),
        store_(kv::KvConfig{}, cluster_.node_ids()) {}

  CheckpointingModule make_module() {
    return CheckpointingModule(sim_, cluster_, storage_, network_, store_,
                               metadata_, metrics_, {});
  }

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::NetworkModel network_;
  cluster::StorageHierarchy storage_;
  kv::KvStore store_;
  MetadataStore metadata_;
  obs::MetricRegistry metrics_;
};

TEST_F(CorruptionFallbackTest, CorruptNewestFallsBackToOlderCheckpoint) {
  auto module = make_module();
  faas::FunctionSpec spec;
  spec.name = "fn";
  for (int i = 0; i < 4; ++i) {
    spec.states.push_back({Duration::sec(3.0), Bytes::mib(1)});
  }
  faas::Invocation inv;
  inv.id = FunctionId{1};
  inv.job = JobId{1};
  inv.spec = &spec;
  inv.node = NodeId{1};
  for (std::size_t s = 0; s < 2; ++s) {
    (void)module.state_epilogue(inv, s);
    module.on_state_committed(inv, s);
  }
  const auto healthy = module.restore_plan(inv.id, NodeId{2});
  EXPECT_EQ(healthy.from_state, 2u);

  // Bit rot on the newest checkpoint: the plan must drop to state 0's
  // intact copy rather than restore damaged bytes.
  ASSERT_TRUE(store_.corrupt_entry(CheckpointingModule::kv_key(inv.id, 1)));
  const auto degraded = module.restore_plan(inv.id, NodeId{2});
  EXPECT_EQ(degraded.from_state, 1u);
  EXPECT_GE(metrics_.counter("checkpoint_corrupt_skipped"), 1.0);

  // Both checkpoints damaged: full re-execution, never a corrupt restore.
  ASSERT_TRUE(store_.corrupt_entry(CheckpointingModule::kv_key(inv.id, 0)));
  const auto rebuilt = module.restore_plan(inv.id, NodeId{2});
  EXPECT_EQ(rebuilt.from_state, 0u);
  EXPECT_FALSE(rebuilt.checkpoint.has_value());
  EXPECT_EQ(metrics_.counter("restored_corrupt_checkpoints"), 0.0);
}

TEST_F(CorruptionFallbackTest, WriteFailureDegradesWithoutMetadataRow) {
  // Every KV cache node dead and no persistence: the put fails, the
  // module logs and counts it, and no metadata row advertises a
  // checkpoint that was never stored.
  kv::KvConfig kv_config;
  kv_config.native_persistence = false;
  kv::KvStore dead_store(kv_config, cluster_.node_ids());
  for (const NodeId node : cluster_.node_ids()) dead_store.fail_node(node);
  CheckpointingModule module(sim_, cluster_, storage_, network_, dead_store,
                             metadata_, metrics_, {});
  faas::FunctionSpec spec;
  spec.states.push_back({Duration::sec(3.0), Bytes::mib(1)});
  faas::Invocation inv;
  inv.id = FunctionId{2};
  inv.job = JobId{1};
  inv.spec = &spec;
  inv.node = NodeId{1};
  (void)module.state_epilogue(inv, 0);
  module.on_state_committed(inv, 0);
  EXPECT_GE(metrics_.counter("checkpoint_write_failures"), 1.0);
  EXPECT_TRUE(metadata_.checkpoints_of(inv.id).empty());
  const auto plan = module.restore_plan(inv.id, NodeId{2});
  EXPECT_EQ(plan.from_state, 0u);
  EXPECT_FALSE(plan.checkpoint.has_value());
}

}  // namespace
}  // namespace canary::core
