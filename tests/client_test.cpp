// Tests for the application-facing checkpoint client (Algorithm 1's
// user-checkpoint branch) and the blob store.
#include <gtest/gtest.h>

#include "canary/client.hpp"

namespace canary::client {
namespace {

kv::KvStore make_store(Bytes entry_limit = Bytes::kib(64)) {
  kv::KvConfig config;
  config.max_entry_size = entry_limit;
  return kv::KvStore(config, {NodeId{1}, NodeId{2}});
}

TEST(InMemoryBlobStoreTest, PutGetRemove) {
  InMemoryBlobStore blobs;
  ASSERT_TRUE(blobs.put("a", "data").ok());
  const auto got = blobs.get("a");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "data");
  EXPECT_TRUE(blobs.remove("a").ok());
  EXPECT_FALSE(blobs.get("a").ok());
  EXPECT_FALSE(blobs.remove("a").ok());
}

TEST(CheckpointClientTest, SaveAndLoadRoundTrip) {
  auto store = make_store();
  InMemoryBlobStore blobs;
  CheckpointClient checkpoints(store, blobs, "fn-1");
  ASSERT_TRUE(checkpoints.save(0, "state-zero").ok());
  ASSERT_TRUE(checkpoints.save(1, "state-one").ok());

  const auto restored = checkpoints.load_latest();
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->state_index, 1u);
  EXPECT_EQ(restored->state_data, "state-one");
  EXPECT_TRUE(restored->critical_data.empty());
}

TEST(CheckpointClientTest, LoadSurvivesFreshClient) {
  auto store = make_store();
  InMemoryBlobStore blobs;
  {
    CheckpointClient writer(store, blobs, "fn-2");
    ASSERT_TRUE(writer.save(5, "latest").ok());
  }
  // The recovering function builds a brand-new client over the same
  // stores — exactly the paper's restore-onto-a-replica situation.
  CheckpointClient reader(store, blobs, "fn-2");
  const auto restored = reader.load_latest();
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->state_index, 5u);
  EXPECT_EQ(restored->state_data, "latest");
}

TEST(CheckpointClientTest, CriticalDataCapturedPerSave) {
  auto store = make_store();
  InMemoryBlobStore blobs;
  CheckpointClient checkpoints(store, blobs, "fn-3");
  int epoch = 0;
  checkpoints.register_critical(
      "weights", [&epoch] { return "weights@" + std::to_string(epoch); });
  epoch = 1;
  ASSERT_TRUE(checkpoints.save(0, "s0").ok());
  epoch = 2;
  ASSERT_TRUE(checkpoints.save(1, "s1").ok());

  const auto restored = checkpoints.load_latest();
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->critical_data.size(), 1u);
  EXPECT_EQ(restored->critical_data[0].first, "weights");
  // Captured at the time of the latest save.
  EXPECT_EQ(restored->critical_data[0].second, "weights@2");
}

TEST(CheckpointClientTest, OversizedPayloadSpillsToBlobStore) {
  auto store = make_store(Bytes::of(128));
  InMemoryBlobStore blobs;
  CheckpointClient checkpoints(store, blobs, "fn-4");
  const std::string big(1024, 'x');
  ASSERT_TRUE(checkpoints.save(0, big).ok());
  EXPECT_EQ(checkpoints.spills(), 1u);
  EXPECT_EQ(blobs.size(), 1u);

  const auto restored = checkpoints.load_latest();
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->state_data, big);
}

TEST(CheckpointClientTest, LostSpillFallsBackToOlderCheckpoint) {
  auto store = make_store(Bytes::of(128));
  InMemoryBlobStore blobs;
  CheckpointClient checkpoints(store, blobs, "fn-5");
  ASSERT_TRUE(checkpoints.save(0, "small-and-safe").ok());
  ASSERT_TRUE(checkpoints.save(1, std::string(1024, 'y')).ok());
  // The spilled blob dies (node-local tier lost with its node).
  ASSERT_TRUE(blobs.remove("app-blob/fn-5/1").ok());

  const auto restored = checkpoints.load_latest();
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->state_index, 0u);
  EXPECT_EQ(restored->state_data, "small-and-safe");
}

TEST(CheckpointClientTest, RetentionKeepsLatestN) {
  auto store = make_store();
  InMemoryBlobStore blobs;
  ClientConfig config;
  config.retention = 2;
  CheckpointClient checkpoints(store, blobs, "fn-6", config);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(checkpoints.save(i, "s" + std::to_string(i)).ok());
  }
  EXPECT_EQ(store.keys_with_prefix("app-ckpt/fn-6/").size(), 2u);
  const auto restored = checkpoints.load_latest();
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->state_index, 4u);
}

TEST(CheckpointClientTest, ResaveSameIndexOverwrites) {
  auto store = make_store();
  InMemoryBlobStore blobs;
  CheckpointClient checkpoints(store, blobs, "fn-7");
  ASSERT_TRUE(checkpoints.save(0, "first").ok());
  ASSERT_TRUE(checkpoints.save(0, "second").ok());
  const auto restored = checkpoints.load_latest();
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->state_data, "second");
  EXPECT_EQ(store.keys_with_prefix("app-ckpt/fn-7/").size(), 1u);
}

TEST(CheckpointClientTest, ClientsAreNamespaced) {
  auto store = make_store();
  InMemoryBlobStore blobs;
  CheckpointClient a(store, blobs, "fn-a");
  CheckpointClient b(store, blobs, "fn-b");
  ASSERT_TRUE(a.save(0, "a-state").ok());
  ASSERT_TRUE(b.save(0, "b-state").ok());
  EXPECT_EQ(a.load_latest()->state_data, "a-state");
  EXPECT_EQ(b.load_latest()->state_data, "b-state");
  a.clear();
  EXPECT_FALSE(a.load_latest().has_value());
  EXPECT_TRUE(b.load_latest().has_value());
}

TEST(CheckpointClientTest, EmptyStoreLoadsNothing) {
  auto store = make_store();
  InMemoryBlobStore blobs;
  CheckpointClient checkpoints(store, blobs, "fn-8");
  EXPECT_FALSE(checkpoints.load_latest().has_value());
}

}  // namespace
}  // namespace canary::client
