// Unit tests for the conservative sharded engine: delivery ordering,
// lookahead validation, worker-count invariance, and epoch accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/sharded.hpp"

namespace canary::sim {
namespace {

ShardEngineOptions options(unsigned partitions, unsigned workers,
                           std::int64_t lookahead_usec = 80) {
  ShardEngineOptions opt;
  opt.partitions = partitions;
  opt.workers = workers;
  opt.lookahead = Duration::usec(lookahead_usec);
  return opt;
}

TEST(ShardEngineTest, SinglePartitionRunsLikeSimulator) {
  ShardEngine engine(options(1, 1));
  std::vector<int> order;
  engine.partition(0).schedule_after(Duration::msec(30),
                                     [&] { order.push_back(3); });
  engine.partition(0).schedule_after(Duration::msec(10),
                                     [&] { order.push_back(1); });
  engine.partition(0).schedule_after(Duration::msec(20),
                                     [&] { order.push_back(2); });
  EXPECT_EQ(engine.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.executed_events(), 3u);
}

TEST(ShardEngineTest, WorkersClampedToPartitions) {
  ShardEngine engine(options(2, 16));
  EXPECT_EQ(engine.partitions(), 2u);
  EXPECT_EQ(engine.workers(), 2u);
}

TEST(ShardEngineTest, SetupPostSchedulesDirectly) {
  ShardEngine engine(options(2, 1));
  int fired = 0;
  // Before run() there is no sender clock; post() may target any time.
  engine.post(1, TimePoint::from_usec(5), [&] { ++fired; });
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.messages_delivered(), 0u);  // direct, not via outbox
}

TEST(ShardEngineTest, CrossPartitionMessageDeliveredAtStampedTime) {
  ShardEngine engine(options(2, 2));
  std::int64_t seen_usec = -1;
  engine.partition(0).schedule_at(TimePoint::from_usec(100), [&] {
    engine.post(1, TimePoint::from_usec(100 + 80), [&] {
      seen_usec = engine.partition(1).now().count_usec();
    });
  });
  engine.run();
  EXPECT_EQ(seen_usec, 180);
  EXPECT_EQ(engine.messages_delivered(), 1u);
}

TEST(ShardEngineTest, PingPongAcrossPartitions) {
  ShardEngine engine(options(2, 2));
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops >= 64) return;
    const unsigned self = hops % 2u;  // partition that just ran
    const unsigned peer = 1u - self;
    engine.post(peer,
                engine.partition(self).now() + Duration::usec(80), hop);
  };
  engine.partition(1).schedule_at(TimePoint::from_usec(80), hop);
  engine.run();
  EXPECT_EQ(hops, 64);
  EXPECT_EQ(engine.messages_delivered(), 63u);
  EXPECT_GE(engine.epochs(), 63u);
}

// The headline property: with the partition count fixed, the executed
// event tape of every partition is identical at any worker count.
struct TapeEntry {
  unsigned partition;
  std::int64_t when_usec;
  int id;
  bool operator==(const TapeEntry&) const = default;
};

std::vector<std::vector<TapeEntry>> run_fanout_model(unsigned workers) {
  constexpr unsigned kPartitions = 4;
  ShardEngine engine(options(kPartitions, workers, 100));
  std::vector<std::vector<TapeEntry>> tapes(kPartitions);
  int next_id = 0;
  // Each partition runs a local chain; every step fans a message out to
  // every other partition, which appends to its own tape.
  for (unsigned p = 0; p < kPartitions; ++p) {
    for (int step = 0; step < 8; ++step) {
      const std::int64_t at = 50 + 40 * step + 7 * static_cast<int>(p);
      const int id = next_id++;
      engine.post(p, TimePoint::from_usec(at), [&engine, &tapes, p, id] {
        const std::int64_t now = engine.partition(p).now().count_usec();
        tapes[p].push_back({p, now, id});
        for (unsigned q = 0; q < kPartitions; ++q) {
          if (q == p) continue;
          const int remote_id = 1000 + id * 10 + static_cast<int>(q);
          engine.post(q, TimePoint::from_usec(now + 100 + (id % 3)),
                      [&engine, &tapes, q, remote_id] {
                        tapes[q].push_back(
                            {q, engine.partition(q).now().count_usec(),
                             remote_id});
                      });
        }
      });
    }
  }
  engine.run();
  return tapes;
}

TEST(ShardEngineTest, TapesInvariantAcrossWorkerCounts) {
  const std::vector<std::vector<TapeEntry>> reference = run_fanout_model(1);
  std::size_t total = 0;
  for (const std::vector<TapeEntry>& tape : reference) total += tape.size();
  EXPECT_EQ(total, 4u * 8u * 4u);  // 32 local events, each fanning to 3 peers
  for (unsigned workers : {2u, 3u, 4u}) {
    EXPECT_EQ(run_fanout_model(workers), reference)
        << "tape diverged at workers=" << workers;
  }
}

TEST(ShardEngineTest, EpochsBoundedByLookaheadWindows) {
  // Two partitions, events 1 ms apart, lookahead 100 us: the engine must
  // take multiple windows but far fewer than one per event pair would
  // suggest if windows were not anchored at the global minimum.
  ShardEngine engine(options(2, 2, 100));
  for (int i = 0; i < 10; ++i) {
    engine.post(0, TimePoint::from_usec(1000 * (i + 1)), [] {});
    engine.post(1, TimePoint::from_usec(1000 * (i + 1) + 10), [] {});
  }
  engine.run();
  EXPECT_EQ(engine.executed_events(), 20u);
  // Each 1 ms cluster fits in one 100 us window (events 10 us apart).
  EXPECT_EQ(engine.epochs(), 10u);
}

TEST(ShardEngineTest, RunTwiceContinuesFromQuiescence) {
  ShardEngine engine(options(2, 2));
  int fired = 0;
  engine.post(0, TimePoint::from_usec(100), [&] { ++fired; });
  EXPECT_EQ(engine.run(), 1u);
  engine.post(1, TimePoint::from_usec(500), [&] { ++fired; });
  EXPECT_EQ(engine.run(), 1u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.executed_events(), 2u);
}

TEST(ShardEngineDeathTest, PostBelowLookaheadIsRejected) {
  auto violate = [] {
    ShardEngine engine(options(2, 1));
    engine.partition(0).schedule_at(TimePoint::from_usec(100), [&] {
      // 50 us ahead < 80 us lookahead: conservatively unsafe.
      engine.post(1, TimePoint::from_usec(150), [] {});
    });
    engine.run();
  };
  EXPECT_DEATH(violate(), "lookahead");
}

}  // namespace
}  // namespace canary::sim
