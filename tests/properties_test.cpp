// Property-based invariant sweeps (TEST_P) across workloads, error rates
// and strategies: accounting identities and dominance relations that must
// hold for every parameter combination.
#include <gtest/gtest.h>

#include <tuple>

#include "harness/scenario.hpp"
#include "workloads/workloads.hpp"

namespace canary::harness {
namespace {

using workloads::WorkloadKind;

ScenarioConfig config_for(recovery::StrategyConfig strategy, double rate,
                          std::uint64_t seed = 404) {
  ScenarioConfig config;
  config.strategy = strategy;
  config.error_rate = rate;
  config.cluster_nodes = 8;
  config.seed = seed;
  return config;
}

class InvariantSweep
    : public ::testing::TestWithParam<std::tuple<WorkloadKind, double>> {};

TEST_P(InvariantSweep, AccountingIdentitiesHold) {
  const auto [kind, rate] = GetParam();
  const std::vector<faas::JobSpec> jobs = {workloads::make_job(kind, 25)};

  for (const auto& strategy : {recovery::StrategyConfig::retry(),
                               recovery::StrategyConfig::canary_full()}) {
    const auto result = ScenarioRunner::run(config_for(strategy, rate), jobs);
    ASSERT_TRUE(result.completed);

    // Every function completed exactly once.
    EXPECT_EQ(result.counters.at("functions_completed"), 25.0);

    // Every failure's recovery interval eventually resolved (a completed
    // function cannot owe recovery).
    const auto failures = result.counters.find("failures");
    const auto recoveries = result.counters.find("recoveries");
    const double failed = failures == result.counters.end() ? 0.0
                                                            : failures->second;
    const double recovered =
        recoveries == result.counters.end() ? 0.0 : recoveries->second;
    EXPECT_EQ(failed, recovered);
    EXPECT_EQ(result.failures, failed);

    // Cost breakdown sums to the total.
    EXPECT_NEAR(result.cost.total_usd,
                result.cost.function_usd + result.cost.replica_usd +
                    result.cost.rr_usd + result.cost.standby_usd,
                1e-12);

    // No failures => no lost work and vice versa.
    if (failed == 0.0) {
      EXPECT_EQ(result.lost_work_s, 0.0);
      EXPECT_EQ(result.total_recovery_s, 0.0);
    }
  }
}

TEST_P(InvariantSweep, FailuresOnlyMakeThingsWorseThanIdeal) {
  const auto [kind, rate] = GetParam();
  const std::vector<faas::JobSpec> jobs = {workloads::make_job(kind, 25)};

  const auto ideal = ScenarioRunner::run(
      config_for(recovery::StrategyConfig::ideal(), rate), jobs);
  for (const auto& strategy : {recovery::StrategyConfig::retry(),
                               recovery::StrategyConfig::canary_full()}) {
    const auto faulty = ScenarioRunner::run(config_for(strategy, rate), jobs);
    // Failures can only delay completion. A 1% tolerance absorbs the one
    // legitimate counter-effect: a restarted function can land on a
    // faster (heterogeneous) node than its ideal-run placement.
    EXPECT_GE(faulty.makespan_s, ideal.makespan_s * 0.99);
    // Function-container cost can only grow with redone work (same
    // placement-shift tolerance).
    EXPECT_GE(faulty.cost.function_usd, ideal.cost.function_usd * 0.99);
  }
}

TEST_P(InvariantSweep, CanaryRecoveryDominatesRetry) {
  const auto [kind, rate] = GetParam();
  if (rate < 0.15) return;  // below that, too few failures to compare
  const std::vector<faas::JobSpec> jobs = {workloads::make_job(kind, 25)};
  const auto retry = ScenarioRunner::run(
      config_for(recovery::StrategyConfig::retry(), rate), jobs);
  const auto canary = ScenarioRunner::run(
      config_for(recovery::StrategyConfig::canary_full(), rate), jobs);
  EXPECT_LT(canary.total_recovery_s, retry.total_recovery_s);
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsByErrorRate, InvariantSweep,
    ::testing::Combine(::testing::Values(WorkloadKind::kDlTraining,
                                         WorkloadKind::kWebService,
                                         WorkloadKind::kSparkMining,
                                         WorkloadKind::kCompression,
                                         WorkloadKind::kGraphBfs),
                       ::testing::Values(0.05, 0.20, 0.40)));

// Seeds sweep: determinism and seed sensitivity.
class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, RunsAreReproduciblePerSeed) {
  const std::vector<faas::JobSpec> jobs = {
      workloads::make_job(WorkloadKind::kWebService, 20)};
  const auto config = config_for(recovery::StrategyConfig::canary_full(), 0.3,
                                 GetParam());
  const auto a = ScenarioRunner::run(config, jobs);
  const auto b = ScenarioRunner::run(config, jobs);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.total_recovery_s, b.total_recovery_s);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.cost_usd, b.cost_usd);
  EXPECT_EQ(a.simulated_events, b.simulated_events);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 42, 31337, 999999937));

// Error-rate monotonicity of the retry strategy's expected damage
// (averaged over repetitions to tame single-run noise).
TEST(MonotonicityTest, RetryLostWorkGrowsWithErrorRate) {
  const std::vector<faas::JobSpec> jobs = {
      workloads::make_job(WorkloadKind::kCompression, 40)};
  double last = -1.0;
  for (const double rate : {0.05, 0.15, 0.30, 0.50}) {
    double total = 0.0;
    for (std::uint64_t rep = 0; rep < 3; ++rep) {
      total += ScenarioRunner::run(
                   config_for(recovery::StrategyConfig::retry(), rate,
                              1000 + rep),
                   jobs)
                   .lost_work_s;
    }
    EXPECT_GT(total, last);
    last = total;
  }
}

}  // namespace
}  // namespace canary::harness
