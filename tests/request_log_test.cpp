// Tests for the exactly-once request log and the mini database backend.
#include <gtest/gtest.h>

#include "workloads/kernels/request_log.hpp"

namespace canary::workloads::kernels {
namespace {

TEST(MiniDbTest, PutGetAppend) {
  MiniDb db;
  EXPECT_FALSE(db.get("k").has_value());
  db.put("k", "v");
  EXPECT_EQ(*db.get("k"), "v");
  db.append("k", "+1");
  EXPECT_EQ(*db.get("k"), "v+1");
  db.append("new", "x");  // append to a missing row creates it
  EXPECT_EQ(*db.get("new"), "x");
  EXPECT_EQ(db.mutations(), 3u);
  EXPECT_EQ(db.size(), 2u);
}

TEST(RequestLogTest, ExecutesHandlerOncePerId) {
  RequestLog log;
  int calls = 0;
  const auto first = log.execute(7, [&] {
    ++calls;
    return "response-7";
  });
  bool was_replay = false;
  const auto second = log.execute(7, [&] {
    ++calls;
    return "SHOULD NOT RUN";
  }, &was_replay);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(first, "response-7");
  EXPECT_EQ(second, "response-7");
  EXPECT_TRUE(was_replay);
  EXPECT_EQ(log.executions(), 1u);
  EXPECT_EQ(log.replays(), 1u);
}

TEST(RequestLogTest, DistinctIdsExecuteIndependently) {
  RequestLog log;
  for (std::uint64_t r = 0; r < 10; ++r) {
    log.execute(r, [r] { return "resp-" + std::to_string(r); });
  }
  EXPECT_EQ(log.size(), 10u);
  EXPECT_EQ(log.executions(), 10u);
  EXPECT_EQ(*log.response_of(3), "resp-3");
  EXPECT_FALSE(log.response_of(99).has_value());
  EXPECT_TRUE(log.seen(9));
  EXPECT_FALSE(log.seen(10));
}

TEST(RequestLogTest, SerializeRoundTrip) {
  RequestLog log;
  for (std::uint64_t r = 0; r < 5; ++r) {
    log.execute(r, [r] { return std::string(r + 1, 'x'); });
  }
  (void)log.execute(2, [] { return "dup"; });  // one replay

  const auto restored = RequestLog::deserialize(log.serialize());
  EXPECT_EQ(restored.size(), 5u);
  EXPECT_EQ(restored.executions(), 5u);
  EXPECT_EQ(restored.replays(), 1u);
  EXPECT_EQ(*restored.response_of(4), "xxxxx");
}

TEST(RequestLogTest, ExactlyOnceAcrossRestore) {
  // The paper's scenario: function dies mid-batch, recovery replays the
  // whole request stream against the restored log; backend side effects
  // happen exactly once.
  MiniDb db;
  RequestLog log;
  auto handle = [&db](std::uint64_t r) {
    db.append("ledger", "+" + std::to_string(r));
    return "ok";
  };
  for (std::uint64_t r = 0; r < 6; ++r) {
    log.execute(r, [&] { return handle(r); });
  }
  auto recovered = RequestLog::deserialize(log.serialize());
  for (std::uint64_t r = 0; r < 10; ++r) {  // full stream re-offered
    recovered.execute(r, [&] { return handle(r); });
  }
  EXPECT_EQ(db.mutations(), 10u);  // not 16
  EXPECT_EQ(recovered.replays(), 6u);
  EXPECT_EQ(*db.get("ledger"), "+0+1+2+3+4+5+6+7+8+9");
}

TEST(RequestLogDeathTest, CorruptLogRejected) {
  RequestLog log;
  log.execute(1, [] { return "r"; });
  std::string bytes = log.serialize();
  bytes.pop_back();
  EXPECT_DEATH((void)RequestLog::deserialize(bytes), "request log|response");
}

}  // namespace
}  // namespace canary::workloads::kernels
