// Fault surface v3: network partitions, correlated fault-domain outages,
// epoch-fenced commits, and split-brain safety. Covers the reachability
// model, the KV store's stale-epoch/quorum gates, fault-domain-aware
// placement, the end-to-end zone-cut zombie path, the correlated-kill
// double-death guard, and a mini sweep of the partition chaos family.
#include <gtest/gtest.h>

#include <unordered_map>

#include "cluster/cluster.hpp"
#include "cluster/network.hpp"
#include "harness/chaos.hpp"
#include "harness/scenario.hpp"
#include "kvstore/kvstore.hpp"
#include "obs/event_log.hpp"
#include "recovery/strategies.hpp"

namespace canary::cluster {
namespace {

TEST(NetworkReachabilityTest, AsymmetricRulesAndQuorum) {
  Cluster cluster = Cluster::testbed(8);
  NetworkModel net(&cluster, {});
  // No rules: the fast path reports full reachability.
  EXPECT_FALSE(net.has_partitions());
  EXPECT_TRUE(net.reachable(NodeId{1}, NodeId{2}));
  EXPECT_TRUE(net.reaches_majority(NodeId{1}));

  // A directed rule blocks only its own direction.
  const auto one_way = net.block({NodeId{1}}, {NodeId{2}});
  EXPECT_TRUE(net.has_partitions());
  EXPECT_EQ(net.active_rules(), 1u);
  EXPECT_FALSE(net.reachable(NodeId{1}, NodeId{2}));
  EXPECT_TRUE(net.reachable(NodeId{2}, NodeId{1}));
  // Losing one peer does not cost the quorum: node 1 still exchanges
  // traffic with six of the seven other alive nodes (plus itself).
  EXPECT_TRUE(net.reaches_majority(NodeId{1}));

  // Cut node 1 off from everyone: it drops below the majority while
  // every other node keeps it (they only lose bidirectional reach to 1).
  std::vector<NodeId> others;
  for (std::size_t n = 2; n <= 8; ++n) others.push_back(NodeId{n});
  const auto isolate = net.block({NodeId{1}}, others);
  EXPECT_FALSE(net.reaches_majority(NodeId{1}));
  EXPECT_TRUE(net.reaches_majority(NodeId{2}));

  // While any rule is active a dead node never reaches the quorum.
  cluster.fail_node(NodeId{3});
  EXPECT_FALSE(net.reaches_majority(NodeId{3}));
  cluster.restore_node(NodeId{3});

  // Heals restore the fast path exactly: with no rules the predicate
  // short-circuits to true (liveness is the callers' job, not ours).
  net.unblock(isolate);
  net.unblock(one_way);
  EXPECT_FALSE(net.has_partitions());
  EXPECT_TRUE(net.reachable(NodeId{1}, NodeId{2}));
  EXPECT_TRUE(net.reaches_majority(NodeId{1}));
}

TEST(FaultDomainPlacementTest, AvoidingZonePrefersOtherDomains) {
  Cluster cluster = Cluster::testbed(8);  // zones {0, 1}, four nodes each
  EXPECT_EQ(cluster.zone_of(NodeId{1}), 0u);
  EXPECT_EQ(cluster.zone_of(NodeId{4}), 0u);
  EXPECT_EQ(cluster.zone_of(NodeId{5}), 1u);
  EXPECT_EQ(cluster.zones(), (std::vector<std::uint32_t>{0, 1}));
  const std::vector<NodeId> zone1 = cluster.nodes_in_zone(1);
  ASSERT_EQ(zone1.size(), 4u);
  EXPECT_EQ(zone1.front(), NodeId{5});

  // On an empty cluster the spreading probe lands outside the avoided
  // zone even though in-zone hosts are equally loaded with lower ids.
  const auto spread =
      cluster.least_loaded_avoiding_zone(Bytes::mib(256), 0, {});
  ASSERT_TRUE(spread.has_value());
  EXPECT_EQ(cluster.zone_of(*spread), 1u);

  // With every out-of-zone host excluded it falls back in-zone rather
  // than failing the placement outright.
  const auto fallback =
      cluster.least_loaded_avoiding_zone(Bytes::mib(256), 0, zone1);
  ASSERT_TRUE(fallback.has_value());
  EXPECT_EQ(cluster.zone_of(*fallback), 0u);
}

}  // namespace
}  // namespace canary::cluster

namespace canary::kv {
namespace {

TEST(EpochFencingTest, FencedWriterCannotCommit) {
  cluster::Cluster cluster = cluster::Cluster::testbed(4);
  KvStore store(KvConfig{}, cluster.node_ids());
  ASSERT_TRUE(store.put("k", "v1", std::nullopt, NodeId{1}).ok());

  store.fence_node(NodeId{1});
  EXPECT_TRUE(store.node_fenced(NodeId{1}));
  // The zombie's commit is a no-op: rejected, counted, value untouched.
  EXPECT_FALSE(store.put("k", "zombie", std::nullopt, NodeId{1}).ok());
  EXPECT_EQ(store.stats().stale_epoch_rejects, 1u);
  EXPECT_EQ(store.get("k").value().payload, "v1");
  // Other writers are unaffected.
  EXPECT_TRUE(store.put("k2", "v", std::nullopt, NodeId{2}).ok());

  // Restoring re-admits the node at a fresh epoch.
  store.restore_node(NodeId{1});
  EXPECT_FALSE(store.node_fenced(NodeId{1}));
  EXPECT_TRUE(store.put("k", "v2", std::nullopt, NodeId{1}).ok());
  EXPECT_EQ(store.get("k").value().payload, "v2");
}

TEST(EpochFencingTest, QuorumPredicateBlocksMidPartitionWrites) {
  cluster::Cluster cluster = cluster::Cluster::testbed(4);
  KvStore store(KvConfig{}, cluster.node_ids());
  bool partitioned = true;
  store.set_writer_quorum(
      [&](NodeId writer) { return !(partitioned && writer == NodeId{2}); });

  // Mid-partition, before the detector fences anyone: the minority
  // writer is blocked at put time, distinct from the stale-epoch case.
  EXPECT_FALSE(store.put("k", "v", std::nullopt, NodeId{2}).ok());
  EXPECT_EQ(store.stats().quorum_blocked_puts, 1u);
  EXPECT_EQ(store.stats().stale_epoch_rejects, 0u);
  EXPECT_TRUE(store.put("k", "v", std::nullopt, NodeId{3}).ok());

  partitioned = false;  // heal: the same writer commits again
  EXPECT_TRUE(store.put("k", "v2", std::nullopt, NodeId{2}).ok());
  EXPECT_EQ(store.get("k").value().payload, "v2");
}

}  // namespace
}  // namespace canary::kv

namespace canary::harness {
namespace {

double counter(const RunResult& result, const std::string& name) {
  const auto it = result.counters.find(name);
  return it == result.counters.end() ? 0.0 : it->second;
}

/// Every function that completed did so exactly once — the split-brain
/// acceptance test at the causal-log level.
void expect_exactly_once(const RunResult& result) {
  ASSERT_NE(result.events, nullptr);
  ASSERT_FALSE(result.events->truncated());
  std::unordered_map<std::uint64_t, int> completes;
  for (const obs::Event& event : result.events->events()) {
    if (event.kind == obs::EventKind::kComplete &&
        event.labels.function.valid()) {
      ++completes[event.labels.function.value()];
    }
  }
  EXPECT_GT(completes.size(), 0u);
  for (const auto& [fn, count] : completes) {
    EXPECT_EQ(count, 1) << "function " << fn << " completed " << count
                        << " times";
  }
}

/// Long-running functions (~3.8 s of state work each) so the partition
/// windows land mid-execution — the fig13 recipe.
std::vector<faas::JobSpec> partition_jobs(int jobs_count = 3) {
  std::vector<faas::JobSpec> jobs;
  for (int j = 0; j < jobs_count; ++j) {
    faas::JobSpec job;
    job.name = "part-job-" + std::to_string(j);
    job.account = AccountId{1};
    for (int f = 0; f < 10; ++f) {
      faas::FunctionSpec fn;
      fn.name = "part-fn-" + std::to_string(j) + "-" + std::to_string(f);
      fn.runtime = faas::RuntimeImage::kPython3;
      for (int s = 0; s < 4; ++s) {
        faas::StateSpec state;
        state.duration = Duration::msec(900);
        state.checkpoint_payload = Bytes::of(1024 * 1024);
        fn.states.push_back(state);
      }
      fn.finalize = Duration::msec(200);
      job.functions.push_back(std::move(fn));
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

ScenarioConfig partition_config(std::size_t nodes) {
  ScenarioConfig config;
  config.seed = 20260808;
  config.cluster_nodes = nodes;
  config.error_rate = 0.0;  // faults come from the partition surface alone
  config.strategy = recovery::StrategyConfig::canary_full();
  config.detection.enabled = true;
  config.detection.heartbeat_interval = Duration::msec(250);
  config.detection.timeout_multiplier = 2.0;
  config.detection.confirm_multiplier = 1.0;
  config.detection.sweep_interval = Duration::msec(100);
  config.detection.horizon = Duration::sec(600.0);
  config.kv.mode = kv::CacheMode::kPartitioned;
  config.kv.backups = 1;
  return config;
}

TEST(PartitionScenarioTest, ZoneCutFencesZombiesWithoutSplitBrain) {
  // A 12-node / 3-zone cluster loses zone 2 behind a 5 s bipartition:
  // the majority confirms the cut-off workers dead and redeploys, the
  // minority zombies finish executing, and every zombie commit bounces
  // off the store's epoch gate.
  auto config = partition_config(12);
  ScenarioConfig::PartitionFault window;
  window.at = Duration::sec(1.0);
  window.duration = Duration::sec(5.0);
  window.zone = 2;
  config.partitions.push_back(window);

  const auto result = ScenarioRunner::run(config, partition_jobs());
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.injected_partitions, 1u);
  EXPECT_EQ(result.injected_partition_heals, 1u);
  EXPECT_EQ(result.partitions_active_end, 0u);
  EXPECT_GT(result.heartbeats_partition_dropped, 0u);
  EXPECT_GE(result.detector_confirmed_dead, 1u);
  EXPECT_GE(counter(result, "nodes_fenced_logical"), 1.0);

  const double attempts = counter(result, "zombie_commit_attempts");
  const double rejected = counter(result, "zombie_commits_rejected");
  EXPECT_GT(attempts, 0.0);
  EXPECT_EQ(counter(result, "zombie_commits_committed"), 0.0);
  EXPECT_EQ(attempts, rejected);
  EXPECT_GT(result.kv_stale_epoch_rejects, 0u);

  // Heal convergence: the controller's liveness view matches the cluster
  // once the window heals, and no function ran twice.
  EXPECT_TRUE(result.metadata_views_consistent);
  EXPECT_EQ(result.undetected_failures, 0u);
  expect_exactly_once(result);
}

TEST(PartitionScenarioTest, ZoneOutageIsOneCausalEventAndSkipsDeadNodes) {
  // Satellite regression for the correlated-kill double-death guard: a
  // second outage of an already-dead zone counts every member as a
  // skipped kill, never as a second death (so KV entries cannot be
  // double-dropped), and each outage is exactly ONE causal root event.
  auto config = partition_config(8);  // zones {0, 1}, four nodes each
  config.zone_outages.push_back({Duration::sec(1.0), 0});
  config.zone_outages.push_back({Duration::sec(2.5), 0});

  const auto result = ScenarioRunner::run(config, partition_jobs());
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.injected_zone_outages, 2u);
  EXPECT_EQ(result.injected_node_kills, 4u);
  EXPECT_EQ(result.injected_skipped_node_kills, 4u);

  ASSERT_NE(result.events, nullptr);
  std::size_t outage_roots = 0;
  for (const obs::Event& event : result.events->events()) {
    if (event.kind == obs::EventKind::kAnnotation &&
        event.name == "injected_zone_outage") {
      ++outage_roots;
    }
  }
  EXPECT_EQ(outage_roots, 2u);
  expect_exactly_once(result);
}

TEST(PartitionScenarioTest, SurfaceOffLeavesCountersUntouched) {
  // The v3 surface is opt-in: with no partition faults configured none
  // of the new counters move (the byte-identity gate in CI depends on
  // this staying true).
  auto config = partition_config(8);
  const auto result = ScenarioRunner::run(config, partition_jobs(1));
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.injected_partitions, 0u);
  EXPECT_EQ(result.injected_partition_heals, 0u);
  EXPECT_EQ(result.injected_zone_outages, 0u);
  EXPECT_EQ(result.heartbeats_partition_dropped, 0u);
  EXPECT_EQ(result.kv_stale_epoch_rejects, 0u);
  EXPECT_EQ(result.kv_quorum_blocked_puts, 0u);
  EXPECT_EQ(result.counters.count("zombie_commit_attempts"), 0u);
  EXPECT_EQ(result.counters.count("nodes_fenced_logical"), 0u);
  EXPECT_TRUE(result.metadata_views_consistent);
}

TEST(PartitionChaosSweepTest, MiniSweepHoldsAllInvariants) {
  // A handful of fifth-family scenarios inline in the unit suite; the
  // 64-seed subset lives in bench/chaos_campaign. Both new oracles (no
  // split brain, heal convergence) run inside chaos_oracles.
  std::uint64_t partitions_started = 0;
  for (std::uint64_t seed = 10001; seed < 10005; ++seed) {
    const ChaosOutcome outcome = run_partition_chaos_scenario(seed);
    EXPECT_TRUE(outcome.violations.empty())
        << "seed " << seed << ": " << outcome.violations.front();
    EXPECT_TRUE(outcome.completed) << "seed " << seed;
    EXPECT_EQ(outcome.partitions_started, outcome.partitions_healed)
        << "seed " << seed;
    partitions_started += outcome.partitions_started;
  }
  // The family always injects at least one window per seed.
  EXPECT_GE(partitions_started, 4u);
}

TEST(PartitionChaosSweepTest, ShardedMiniSweepHoldsAllInvariants) {
  // The same scenarios split over 4 partitions x 4 worker threads on the
  // conservative parallel engine, all ten oracles evaluated inside every
  // engine partition plus the merged scalars.
  for (std::uint64_t seed = 10001; seed < 10003; ++seed) {
    const ChaosOutcome outcome = run_sharded_partition_chaos_scenario(seed);
    EXPECT_TRUE(outcome.violations.empty())
        << "seed " << seed << ": " << outcome.violations.front();
    EXPECT_TRUE(outcome.completed) << "seed " << seed;
  }
}

}  // namespace
}  // namespace canary::harness
