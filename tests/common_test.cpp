// Unit tests for the common substrate: strong types, RNG, statistics,
// results, and table formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <thread>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/time.hpp"

namespace canary {
namespace {

// ---- time -------------------------------------------------------------

TEST(DurationTest, ConstructorsAgree) {
  EXPECT_EQ(Duration::msec(5).count_usec(), 5000);
  EXPECT_EQ(Duration::sec(1.5).count_usec(), 1'500'000);
  EXPECT_EQ(Duration::usec(42).count_usec(), 42);
  EXPECT_DOUBLE_EQ(Duration::sec(2.0).to_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(Duration::msec(250).to_msec(), 250.0);
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Duration::msec(100);
  const Duration b = Duration::msec(50);
  EXPECT_EQ((a + b).count_usec(), 150'000);
  EXPECT_EQ((a - b).count_usec(), 50'000);
  EXPECT_EQ((a * 2.5).count_usec(), 250'000);
  EXPECT_EQ((a / 4).count_usec(), 25'000);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
}

TEST(DurationTest, ComparisonAndAccumulation) {
  EXPECT_LT(Duration::msec(1), Duration::msec(2));
  Duration acc = Duration::zero();
  for (int i = 0; i < 10; ++i) acc += Duration::msec(10);
  EXPECT_EQ(acc, Duration::msec(100));
  acc -= Duration::msec(30);
  EXPECT_EQ(acc, Duration::msec(70));
}

TEST(TimePointTest, OffsetArithmetic) {
  const TimePoint t0 = TimePoint::origin();
  const TimePoint t1 = t0 + Duration::sec(3.0);
  EXPECT_EQ((t1 - t0).to_seconds(), 3.0);
  EXPECT_LT(t0, t1);
  EXPECT_EQ(TimePoint::from_usec(123).count_usec(), 123);
}

// ---- ids ----------------------------------------------------------------

TEST(IdTest, InvalidSentinelAndValidity) {
  EXPECT_FALSE(JobId{}.valid());
  EXPECT_FALSE(JobId::invalid().valid());
  EXPECT_TRUE(JobId{1}.valid());
}

TEST(IdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<JobId, FunctionId>);
  static_assert(!std::is_convertible_v<JobId, FunctionId>);
}

TEST(IdTest, GeneratorIsMonotonicFromOne) {
  IdGenerator<ContainerId> gen;
  EXPECT_EQ(gen.next().value(), 1u);
  EXPECT_EQ(gen.next().value(), 2u);
  EXPECT_EQ(gen.issued(), 2u);
}

TEST(IdTest, Hashable) {
  std::set<std::size_t> hashes;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    hashes.insert(std::hash<NodeId>{}(NodeId{i}));
  }
  EXPECT_GT(hashes.size(), 90u);  // no pathological collisions
}

// ---- bytes ---------------------------------------------------------------

TEST(BytesTest, UnitsAndConversions) {
  EXPECT_EQ(Bytes::kib(1).count(), 1024u);
  EXPECT_EQ(Bytes::mib(2).count(), 2u * 1024 * 1024);
  EXPECT_EQ(Bytes::gib(1).count(), 1024ull * 1024 * 1024);
  EXPECT_DOUBLE_EQ(Bytes::mib(3).to_mib(), 3.0);
  EXPECT_DOUBLE_EQ(Bytes::gib(2).to_gib(), 2.0);
}

TEST(BytesTest, ArithmeticAndOrdering) {
  EXPECT_EQ((Bytes::mib(1) + Bytes::mib(1)).count(), Bytes::mib(2).count());
  EXPECT_LT(Bytes::kib(1), Bytes::mib(1));
  EXPECT_EQ((Bytes::kib(4) * 3).count(), Bytes::kib(12).count());
}

// ---- rng -------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 7u);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, ChildStreamsIndependentAndStable) {
  Rng parent(42);
  Rng c1 = parent.child(1);
  Rng c2 = parent.child(2);
  Rng c1_again = parent.child(1);
  EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
  // Child streams should not collide.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.next_u64() == c2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ChildDerivationIgnoresParentPosition) {
  Rng a(42);
  Rng b(42);
  (void)b.next_u64();  // advance b
  EXPECT_EQ(a.child(5).next_u64(), b.child(5).next_u64());
}

// ---- stats -------------------------------------------------------------------

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats whole, left, right;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    whole.add(x);
    (i < 500 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.0);
}

TEST(SampleSetTest, PercentilesExact) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
}

TEST(SampleSetTest, MeanStdMinMax) {
  SampleSet s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(SampleSetTest, EmptyIsZero) {
  SampleSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(50), 0.0);
}

// ---- result ------------------------------------------------------------------

TEST(ResultTest, ValueAndError) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> bad = Error::not_found("missing");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_EQ(ok.value_or(-1), 42);
}

TEST(StatusTest, OkAndError) {
  Status ok = Status::ok_status();
  EXPECT_TRUE(ok.ok());
  Status bad = Error::unavailable("down");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kUnavailable);
}

TEST(ErrorTest, CodeNames) {
  EXPECT_EQ(to_string_view(ErrorCode::kInvalidArgument), "invalid_argument");
  EXPECT_EQ(to_string_view(ErrorCode::kResourceExhausted),
            "resource_exhausted");
}

// ---- table --------------------------------------------------------------------

TEST(TextTableTest, AlignsAndSeparates) {
  TextTable t({"a", "bbbb"});
  t.add_row({"xx", "y"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("xx"), std::string::npos);
}

TEST(TextTableTest, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(TextTableTest, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTableTest, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "a,b,c\nonly,,\n");
}

}  // namespace
}  // namespace canary
