// Randomized invariant harness for the simulation engine and the
// platform above it.
//
// Two layers of fuzzing, both fully deterministic per seed:
//
//  * Engine fuzz: random interleavings of schedule / cancel /
//    schedule-from-callback operations checked against an oracle — the
//    virtual clock never goes backwards, same-timestamp events fire in
//    scheduling order (FIFO tiebreak), cancelled events never fire, and
//    every scheduled event is accounted for (fired xor cancelled). The
//    same operation tape replayed on different heap arities and
//    compaction thresholds must dispatch the identical event sequence.
//
//  * Scenario fuzz: 64 seeds of randomized workloads, strategies, error
//    rates and failure schedules through the full stack, asserting the
//    cross-cutting invariants the figures rely on: every job completes
//    (work conservation), every function completed exactly once, and the
//    critical-path breakdown components partition each recovery window
//    to within one simulated millisecond.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "obs/critical_path.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace canary {
namespace {

// ---------------------------------------------------------------------
// Engine fuzz
// ---------------------------------------------------------------------

struct FiredEvent {
  int id;
  std::int64_t when_usec;
};

struct TapeResult {
  std::vector<FiredEvent> fired;
  std::uint64_t executed = 0;
};

/// Replays a pseudo-random operation tape derived from `seed` on an
/// engine with the given options, recording the dispatch order and
/// checking the oracle invariants inline.
TapeResult run_tape(std::uint64_t seed, sim::SimulatorOptions options,
                    int op_count) {
  std::mt19937_64 rng(seed);
  sim::Simulator sim(options);
  TapeResult result;

  struct Tracked {
    sim::EventHandle handle;
    std::int64_t when_usec = 0;
    bool cancelled = false;
    bool fired = false;
  };
  // Deque-like stable storage: callbacks capture indices, not pointers.
  static thread_local std::vector<Tracked>* tracked_ptr = nullptr;
  std::vector<Tracked> tracked;
  tracked.reserve(static_cast<std::size_t>(op_count) * 2);
  tracked_ptr = &tracked;

  std::int64_t last_fired_usec = -1;
  int next_id = 0;

  auto schedule_one = [&](std::int64_t delay_usec) {
    const int id = next_id++;
    tracked.push_back({});
    const std::int64_t when = sim.now().count_usec() + delay_usec;
    tracked[static_cast<std::size_t>(id)].when_usec = when;
    tracked[static_cast<std::size_t>(id)].handle = sim.schedule_after(
        Duration::usec(delay_usec), [&sim, &result, &last_fired_usec, id] {
          auto& rec = (*tracked_ptr)[static_cast<std::size_t>(id)];
          EXPECT_FALSE(rec.cancelled) << "cancelled event " << id << " fired";
          EXPECT_FALSE(rec.fired) << "event " << id << " fired twice";
          rec.fired = true;
          // Clock monotonicity and exactness.
          EXPECT_EQ(sim.now().count_usec(), rec.when_usec);
          EXPECT_GE(sim.now().count_usec(), last_fired_usec);
          last_fired_usec = sim.now().count_usec();
          result.fired.push_back({id, rec.when_usec});
        });
  };

  for (int op = 0; op < op_count; ++op) {
    const auto roll = rng() % 100;
    if (roll < 55 || tracked.empty()) {
      // Coarse delays make timestamp collisions common, exercising the
      // FIFO tiebreak.
      schedule_one(static_cast<std::int64_t>(rng() % 50) * 1000);
    } else if (roll < 80) {
      auto& victim = tracked[rng() % tracked.size()];
      const bool was_pending = victim.handle.pending();
      victim.handle.cancel();
      if (was_pending && !victim.fired) victim.cancelled = true;
      EXPECT_FALSE(victim.handle.pending());
    } else if (roll < 90) {
      // Drain a few events mid-tape so schedule/cancel interleave with
      // dispatch and slot reuse.
      for (int i = 0; i < 5; ++i) {
        if (!sim.step()) break;
      }
    } else {
      // Double-cancel / cancel-after-fire probes on a random handle.
      auto& victim = tracked[rng() % tracked.size()];
      victim.handle.cancel();
      victim.handle.cancel();
      if (victim.fired) {
        EXPECT_FALSE(victim.handle.pending());
      } else {
        victim.cancelled = true;
      }
    }
  }
  sim.run();
  result.executed = sim.executed_events();

  // Work conservation: every event either fired or was cancelled, and
  // the engine's executed count matches the oracle's.
  std::size_t fired_count = 0;
  for (const auto& rec : tracked) {
    EXPECT_NE(rec.fired, rec.cancelled)
        << "event neither fired nor cancelled (or both)";
    if (rec.fired) ++fired_count;
  }
  EXPECT_EQ(fired_count, result.fired.size());
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_TRUE(sim.empty());

  // FIFO tiebreak: among equal timestamps, ids must ascend — an id is
  // assigned at scheduling time, and mid-tape drains never reorder
  // scheduling order within a timestamp.
  for (std::size_t i = 1; i < result.fired.size(); ++i) {
    if (result.fired[i].when_usec == result.fired[i - 1].when_usec) {
      EXPECT_LT(result.fired[i - 1].id, result.fired[i].id)
          << "FIFO tiebreak violated at t=" << result.fired[i].when_usec;
    }
  }
  tracked_ptr = nullptr;
  return result;
}

TEST(SimFuzzTest, EngineInvariantsHoldAcross64Seeds) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    run_tape(seed, sim::SimulatorOptions{}, 2000);
  }
}

TEST(SimFuzzTest, DispatchOrderIsIdenticalAcrossArities) {
  // (time, seq) is a total order, so the executed sequence must not
  // depend on heap shape or compaction cadence.
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    sim::SimulatorOptions binary;
    binary.heap_arity = 2;
    binary.compact_min = 4;
    sim::SimulatorOptions quad;  // defaults: arity 4, compact_min 64
    sim::SimulatorOptions wide;
    wide.heap_arity = 8;
    wide.compact_min = 1;
    const TapeResult a = run_tape(seed, binary, 300);
    const TapeResult b = run_tape(seed, quad, 300);
    const TapeResult c = run_tape(seed, wide, 300);
    ASSERT_EQ(a.fired.size(), b.fired.size());
    ASSERT_EQ(a.fired.size(), c.fired.size());
    EXPECT_EQ(a.executed, b.executed);
    EXPECT_EQ(a.executed, c.executed);
    for (std::size_t i = 0; i < a.fired.size(); ++i) {
      EXPECT_EQ(a.fired[i].id, b.fired[i].id) << "divergence at index " << i;
      EXPECT_EQ(a.fired[i].id, c.fired[i].id) << "divergence at index " << i;
    }
  }
}

// ---------------------------------------------------------------------
// Sharded engine fuzz
// ---------------------------------------------------------------------
//
// Random relay programs over a random partition count: every fired event
// appends to its partition's tape and relays onward — sometimes locally
// (sub-lookahead, via its own simulator), sometimes cross-partition (via
// post(), >= lookahead ahead). Everything a callback does is a pure
// function of its event's id, never of execution order, so the oracle is
// exact: the per-partition tapes of a multi-worker run must equal the
// single-worker reference byte for byte, and FIFO/monotonicity/
// conservation must hold on both.

struct ShardTapeResult {
  std::vector<std::vector<FiredEvent>> tapes;  // one per partition
  std::uint64_t executed = 0;
  std::uint64_t messages = 0;
  std::uint64_t epochs = 0;
};

struct ShardFuzzCtx {
  sim::ShardEngine* engine = nullptr;
  std::vector<std::vector<FiredEvent>>* tapes = nullptr;
  unsigned partitions = 0;
};

std::uint64_t shard_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void shard_fire(ShardFuzzCtx* ctx, unsigned p, std::uint64_t id, int hops) {
  sim::Simulator& self = ctx->engine->partition(p);
  const std::int64_t now = self.now().count_usec();
  (*ctx->tapes)[p].push_back({static_cast<int>(id & 0x7fffffff), now});
  if (hops <= 0) return;
  const std::uint64_t h = shard_mix(id * 2654435761ull + hops);
  if (h % 3 == 0) {
    // Local relay below the lookahead — legal only through the
    // partition's own simulator, never through post().
    const std::int64_t delay = 1 + static_cast<std::int64_t>((h >> 8) % 90);
    self.schedule_after(Duration::usec(delay), [ctx, p, id, hops] {
      shard_fire(ctx, p, shard_mix(id), hops - 1);
    });
  } else {
    const unsigned dst = static_cast<unsigned>(h % ctx->partitions);
    const std::int64_t delay =
        100 + static_cast<std::int64_t>((h >> 16) % 400);
    ctx->engine->post(dst, TimePoint::from_usec(now + delay),
                      [ctx, dst, id, hops] {
                        shard_fire(ctx, dst, shard_mix(id + 1), hops - 1);
                      });
  }
}

ShardTapeResult run_shard_tape(std::uint64_t seed, unsigned partitions,
                               unsigned workers) {
  std::mt19937_64 rng(seed);  // consumed before run() only
  sim::ShardEngineOptions options;
  options.partitions = partitions;
  options.workers = workers;
  options.lookahead = Duration::usec(100);
  sim::ShardEngine engine(options);

  ShardTapeResult result;
  result.tapes.resize(partitions);
  ShardFuzzCtx ctx{&engine, &result.tapes, partitions};

  const int initial = 20 + static_cast<int>(rng() % 30);
  for (int i = 0; i < initial; ++i) {
    const unsigned p = static_cast<unsigned>(rng() % partitions);
    const std::int64_t at = 100 + static_cast<std::int64_t>(rng() % 5000);
    const std::uint64_t id = rng();
    const int hops = static_cast<int>(rng() % 6);
    ShardFuzzCtx* c = &ctx;
    engine.post(p, TimePoint::from_usec(at),
                [c, p, id, hops] { shard_fire(c, p, id, hops); });
  }

  engine.run();
  result.executed = engine.executed_events();
  result.messages = engine.messages_delivered();
  result.epochs = engine.epochs();
  return result;
}

TEST(SimFuzzTest, ShardedTapesMatchSingleWorkerReferenceAcross32Seeds) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::mt19937_64 shape(seed * 0x9e3779b97f4a7c15ull);
    const unsigned partitions = 1 + static_cast<unsigned>(shape() % 6);
    const unsigned workers = 2 + static_cast<unsigned>(shape() % 7);

    const ShardTapeResult reference = run_shard_tape(seed, partitions, 1);
    const ShardTapeResult parallel =
        run_shard_tape(seed, partitions, workers);

    // Worker-count invariance: identical tapes, counts, and barrier
    // schedule.
    ASSERT_EQ(parallel.tapes.size(), reference.tapes.size());
    for (unsigned p = 0; p < partitions; ++p) {
      SCOPED_TRACE("partition=" + std::to_string(p));
      ASSERT_EQ(parallel.tapes[p].size(), reference.tapes[p].size());
      for (std::size_t i = 0; i < reference.tapes[p].size(); ++i) {
        EXPECT_EQ(parallel.tapes[p][i].id, reference.tapes[p][i].id)
            << "tape divergence at index " << i;
        EXPECT_EQ(parallel.tapes[p][i].when_usec,
                  reference.tapes[p][i].when_usec)
            << "timestamp divergence at index " << i;
      }
    }
    EXPECT_EQ(parallel.executed, reference.executed);
    EXPECT_EQ(parallel.messages, reference.messages);
    EXPECT_EQ(parallel.epochs, reference.epochs);

    // Oracle invariants on both runs: per-partition clocks never go
    // backwards, and every executed event left exactly one tape entry
    // (conservation — nothing fired twice or vanished).
    for (const ShardTapeResult* run : {&reference, &parallel}) {
      std::size_t taped = 0;
      for (const auto& tape : run->tapes) {
        for (std::size_t i = 1; i < tape.size(); ++i) {
          EXPECT_GE(tape[i].when_usec, tape[i - 1].when_usec)
              << "partition clock went backwards";
        }
        taped += tape.size();
      }
      EXPECT_EQ(taped, run->executed);
    }
  }
}

// ---------------------------------------------------------------------
// Scenario fuzz
// ---------------------------------------------------------------------

harness::ScenarioConfig random_scenario(std::mt19937_64& rng) {
  harness::ScenarioConfig config;
  switch (rng() % 4) {
    case 0: config.strategy = recovery::StrategyConfig::retry(); break;
    case 1: config.strategy = recovery::StrategyConfig::canary_full(); break;
    case 2:
      config.strategy = recovery::StrategyConfig::canary_checkpoint_only();
      break;
    default:
      config.strategy = recovery::StrategyConfig::canary_replication_only();
      break;
  }
  config.error_rate = static_cast<double>(rng() % 30) / 100.0;
  config.cluster_nodes = 4u + rng() % 13;  // 4..16
  config.seed = rng();
  if (rng() % 3 == 0) {
    // A node failure somewhere in the first simulated minute.
    config.node_failure_offsets.push_back(
        Duration::sec(1.0 + static_cast<double>(rng() % 50)));
  }
  return config;
}

std::vector<faas::JobSpec> random_jobs(std::mt19937_64& rng) {
  static constexpr workloads::WorkloadKind kKinds[] = {
      workloads::WorkloadKind::kDlTraining, workloads::WorkloadKind::kWebService,
      workloads::WorkloadKind::kSparkMining, workloads::WorkloadKind::kCompression,
      workloads::WorkloadKind::kGraphBfs,
  };
  std::vector<faas::JobSpec> jobs;
  const std::size_t job_count = 1 + rng() % 2;
  for (std::size_t j = 0; j < job_count; ++j) {
    switch (rng() % 3) {
      case 0:
        jobs.push_back(workloads::make_job(kKinds[rng() % 5], 2 + rng() % 30));
        break;
      case 1:
        jobs.push_back(workloads::make_mapreduce_job(2 + rng() % 4,
                                                     1 + rng() % 2));
        break;
      default:
        jobs.push_back(workloads::make_mixed_batch(3 + rng() % 8));
        break;
    }
  }
  return jobs;
}

TEST(SimFuzzTest, ScenarioInvariantsHoldAcross64Seeds) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull);
    const harness::ScenarioConfig config = random_scenario(rng);
    const std::vector<faas::JobSpec> jobs = random_jobs(rng);
    std::size_t total_functions = 0;
    for (const auto& job : jobs) total_functions += job.functions.size();

    const harness::RunResult result = harness::ScenarioRunner::run(config, jobs);

    // Work conservation: the run drains — every job completes, every
    // function completed (counting discarded request-replica losers).
    EXPECT_TRUE(result.completed) << "jobs left incomplete";
    const double completed = result.metrics.counter("functions_completed");
    EXPECT_GE(completed, static_cast<double>(total_functions));
    EXPECT_GE(result.makespan_s, 0.0);
    EXPECT_GE(result.total_recovery_s, 0.0);
    EXPECT_GE(result.lost_work_s, 0.0);

    // Failures either recovered or were absorbed by completion: recovery
    // accounting never goes negative and the simulated clock advanced.
    EXPECT_GT(result.simulated_events, 0u);

    // Critical-path partition: components of every resolved recovery
    // window sum to the window length within 1 sim-ms.
    ASSERT_NE(result.events, nullptr);
    const obs::CriticalPathAnalyzer analyzer(*result.events);
    for (const auto& window : analyzer.recovery_windows()) {
      const double window_s = window.window().to_seconds();
      const double sum_s = window.components.total();
      EXPECT_NEAR(sum_s, window_s, 1e-3)
          << "recovery window of " << window.family
          << " not partitioned: components " << sum_s << " vs window "
          << window_s;
    }

    // The aggregate breakdown inherits the same partition property.
    const double agg_window = result.breakdown.recovery_window_s;
    const double agg_sum = result.breakdown.recovery_components.total();
    EXPECT_NEAR(agg_sum, agg_window,
                1e-3 * std::max<double>(1.0, static_cast<double>(
                                                 result.breakdown.recovery_count)));
  }
}

}  // namespace
}  // namespace canary
