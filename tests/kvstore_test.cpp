// Unit tests for the in-memory distributed KV store (Ignite substitute).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "kvstore/kvstore.hpp"

namespace canary::kv {
namespace {

std::vector<NodeId> nodes(std::size_t n) {
  std::vector<NodeId> ids;
  for (std::size_t i = 1; i <= n; ++i) ids.push_back(NodeId{i});
  return ids;
}

KvStore make_store(KvConfig config = {}, std::size_t node_count = 4) {
  return KvStore(config, nodes(node_count));
}

TEST(KvStoreTest, PutGetRoundTrip) {
  auto store = make_store();
  ASSERT_TRUE(store.put("k1", "hello").ok());
  const auto got = store.get("k1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().payload, "hello");
  EXPECT_EQ(got.value().version, 1u);
  EXPECT_EQ(got.value().logical_size.count(), 5u);
}

TEST(KvStoreTest, OverwriteBumpsVersion) {
  auto store = make_store();
  ASSERT_TRUE(store.put("k", "a").ok());
  ASSERT_TRUE(store.put("k", "b").ok());
  const auto got = store.get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().payload, "b");
  EXPECT_EQ(got.value().version, 2u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, MissingKeyIsNotFound) {
  auto store = make_store();
  const auto got = store.get("nope");
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.error().code, ErrorCode::kNotFound);
  EXPECT_FALSE(store.contains("nope"));
}

TEST(KvStoreTest, RemoveDeletes) {
  auto store = make_store();
  ASSERT_TRUE(store.put("k", "v").ok());
  EXPECT_TRUE(store.remove("k").ok());
  EXPECT_FALSE(store.contains("k"));
  EXPECT_FALSE(store.remove("k").ok());
}

TEST(KvStoreTest, OversizedEntryRejected) {
  KvConfig config;
  config.max_entry_size = Bytes::of(8);
  auto store = make_store(config);
  const Status put = store.put("k", "way too large for the limit");
  EXPECT_FALSE(put.ok());
  EXPECT_EQ(put.error().code, ErrorCode::kResourceExhausted);
  EXPECT_EQ(store.stats().rejected_oversize, 1u);
  EXPECT_FALSE(store.contains("k"));
}

TEST(KvStoreTest, LogicalSizeOverridesPayloadLength) {
  KvConfig config;
  config.max_entry_size = Bytes::mib(4);
  auto store = make_store(config);
  // A tiny location record representing a 100 MiB spilled checkpoint must
  // pass the limit check with its own (metadata) size...
  ASSERT_TRUE(store.put("meta", "loc-record", Bytes::of(512)).ok());
  // ...while a logical size above the limit is rejected even for a small
  // payload string.
  EXPECT_FALSE(store.put("big", "descriptor", Bytes::mib(100)).ok());
}

TEST(KvStoreTest, PrefixScanSorted) {
  auto store = make_store();
  ASSERT_TRUE(store.put("ckpt/7/2", "b").ok());
  ASSERT_TRUE(store.put("ckpt/7/1", "a").ok());
  ASSERT_TRUE(store.put("ckpt/8/1", "c").ok());
  ASSERT_TRUE(store.put("other", "d").ok());
  const auto keys = store.keys_with_prefix("ckpt/7/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "ckpt/7/1");
  EXPECT_EQ(keys[1], "ckpt/7/2");
}

TEST(KvStoreTest, LogicalBytesAccumulate) {
  auto store = make_store();
  ASSERT_TRUE(store.put("a", "xx").ok());
  ASSERT_TRUE(store.put("b", "yyy", Bytes::kib(1)).ok());
  EXPECT_EQ(store.logical_bytes().count(), 2u + 1024u);
}

TEST(KvStoreTest, StatsTrackHitsMisses) {
  auto store = make_store();
  ASSERT_TRUE(store.put("k", "v").ok());
  (void)store.get("k");
  (void)store.get("absent");
  const auto stats = store.stats();
  EXPECT_EQ(stats.puts, 1u);
  EXPECT_EQ(stats.gets, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(KvStoreTest, ReplicatedModeSurvivesNodeFailure) {
  KvConfig config;
  config.mode = CacheMode::kReplicated;
  config.native_persistence = false;
  auto store = make_store(config, 4);
  ASSERT_TRUE(store.put("k", "v").ok());
  store.fail_node(NodeId{1});
  store.fail_node(NodeId{2});
  store.fail_node(NodeId{3});
  EXPECT_TRUE(store.contains("k"));  // one copy left
  EXPECT_EQ(store.stats().entries_lost, 0u);
}

TEST(KvStoreTest, ReplicatedModeLosesDataWhenAllNodesDieWithoutPersistence) {
  KvConfig config;
  config.mode = CacheMode::kReplicated;
  config.native_persistence = false;
  auto store = make_store(config, 2);
  ASSERT_TRUE(store.put("k", "v").ok());
  store.fail_node(NodeId{1});
  store.fail_node(NodeId{2});
  EXPECT_FALSE(store.contains("k"));
  EXPECT_EQ(store.stats().entries_lost, 1u);
}

TEST(KvStoreTest, NativePersistenceSurvivesTotalFailure) {
  KvConfig config;
  config.native_persistence = true;
  auto store = make_store(config, 2);
  ASSERT_TRUE(store.put("k", "v").ok());
  store.fail_node(NodeId{1});
  store.fail_node(NodeId{2});
  EXPECT_TRUE(store.contains("k"));  // recovered from persistence
}

TEST(KvStoreTest, PartitionedModeLosesUnbackedEntries) {
  KvConfig config;
  config.mode = CacheMode::kPartitioned;
  config.backups = 0;
  config.native_persistence = false;
  auto store = make_store(config, 4);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(store.put("key" + std::to_string(i), "v").ok());
  }
  store.fail_node(NodeId{1});
  // With no backups, roughly a quarter of the entries die with node 1.
  const auto lost = store.stats().entries_lost;
  EXPECT_GT(lost, 0u);
  EXPECT_LT(lost, 64u);
  EXPECT_EQ(store.size(), 64u - lost);
}

TEST(KvStoreTest, PartitionedBackupsSurviveSingleFailure) {
  KvConfig config;
  config.mode = CacheMode::kPartitioned;
  config.backups = 1;
  config.native_persistence = false;
  auto store = make_store(config, 4);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(store.put("key" + std::to_string(i), "v").ok());
  }
  store.fail_node(NodeId{2});
  EXPECT_EQ(store.stats().entries_lost, 0u);
  EXPECT_EQ(store.size(), 64u);
}

TEST(KvStoreTest, PartitionedBackupsUnderOverlappingNodeLosses) {
  // Two overlapping node losses with backups=1 and no persistence: an
  // entry dies iff both of its owners are among the dead; every survivor
  // keeps a readable copy on its remaining owner.
  KvConfig config;
  config.mode = CacheMode::kPartitioned;
  config.backups = 1;
  config.native_persistence = false;
  auto store = make_store(config, 4);
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back("key" + std::to_string(i));
    ASSERT_TRUE(store.put(keys.back(), "v" + std::to_string(i)).ok());
  }
  std::uint64_t doomed = 0;  // both owners in {1, 2}
  for (const auto& key : keys) {
    const auto entry = store.get(key);
    ASSERT_TRUE(entry.ok());
    ASSERT_EQ(entry.value().owners.size(), 2u);
    bool survives = false;
    for (const NodeId owner : entry.value().owners) {
      if (owner != NodeId{1} && owner != NodeId{2}) survives = true;
    }
    if (!survives) ++doomed;
  }
  store.fail_node(NodeId{1});
  store.fail_node(NodeId{2});
  EXPECT_EQ(store.stats().entries_lost, doomed);
  EXPECT_EQ(store.size(), 64u - doomed);
  for (const auto& key : keys) {
    if (store.contains(key)) {
      const auto entry = store.get(key);
      ASSERT_TRUE(entry.ok());
      EXPECT_EQ(entry.value().payload, "v" + key.substr(3));
    }
  }
}

TEST(KvStoreTest, CorruptEntryFailsIntegrityButStillReads) {
  // Shard-fault bit rot: the payload flips but the stored checksum keeps
  // the put-time value, so intact() flags the damage while get() still
  // returns bytes (the Checkpointing Module decides what to do).
  auto store = make_store();
  ASSERT_TRUE(store.put("ckpt/f1/3", "state-bytes").ok());
  EXPECT_TRUE(store.intact("ckpt/f1/3"));
  ASSERT_TRUE(store.corrupt_entry("ckpt/f1/3"));
  EXPECT_FALSE(store.intact("ckpt/f1/3"));
  EXPECT_TRUE(store.contains("ckpt/f1/3"));
  EXPECT_TRUE(store.get("ckpt/f1/3").ok());
  EXPECT_EQ(store.stats().entries_corrupted, 1u);
  // Overwriting re-checksums: the entry is whole again.
  ASSERT_TRUE(store.put("ckpt/f1/3", "fresh-bytes").ok());
  EXPECT_TRUE(store.intact("ckpt/f1/3"));
}

TEST(KvStoreTest, DropEntryDestroysWithoutClientRemove) {
  auto store = make_store();
  ASSERT_TRUE(store.put("ckpt/f2/1", "x").ok());
  ASSERT_TRUE(store.drop_entry("ckpt/f2/1"));
  EXPECT_FALSE(store.contains("ckpt/f2/1"));
  EXPECT_FALSE(store.drop_entry("ckpt/f2/1"));  // already gone
  const auto stats = store.stats();
  EXPECT_EQ(stats.entries_lost, 1u);
  EXPECT_EQ(stats.removes, 0u);  // a fault, not a client operation
  EXPECT_FALSE(store.intact("ckpt/f2/1"));  // absent keys are not intact
}

TEST(KvStoreTest, RestoredNodeAcceptsNewEntries) {
  KvConfig config;
  config.native_persistence = false;
  auto store = make_store(config, 2);
  store.fail_node(NodeId{1});
  store.fail_node(NodeId{2});
  EXPECT_FALSE(store.put("k", "v").ok());  // no cache node alive
  store.restore_node(NodeId{1});
  EXPECT_TRUE(store.put("k", "v").ok());
}

TEST(KvStoreTest, ConcurrentMixedWorkloadIsSafe) {
  auto store = make_store({}, 4);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::atomic<int> errors{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "k" + std::to_string((t * 7 + i) % 97);
        if (i % 3 == 0) {
          if (!store.put(key, "v" + std::to_string(i)).ok()) ++errors;
        } else if (i % 3 == 1) {
          (void)store.get(key);
        } else {
          (void)store.remove(key);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(errors.load(), 0);
  const auto stats = store.stats();
  // i % 3 == 0 hits ceil(kOpsPerThread / 3) = 667 iterations per thread.
  EXPECT_EQ(stats.puts,
            static_cast<std::uint64_t>(kThreads) * (kOpsPerThread / 3 + 1));
}

TEST(KvStoreDeathTest, RequiresCacheNodes) {
  EXPECT_DEATH(KvStore({}, {}), "at least one cache node");
}

// Property sweep: entries at the limit boundary are accepted, one byte
// over is rejected, across shard counts.
class KvBoundaryTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KvBoundaryTest, EntryLimitIsInclusive) {
  KvConfig config;
  config.shard_count = GetParam();
  config.max_entry_size = Bytes::of(100);
  KvStore store(config, nodes(2));
  EXPECT_TRUE(store.put("exact", std::string(100, 'x')).ok());
  EXPECT_FALSE(store.put("over", std::string(101, 'x')).ok());
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, KvBoundaryTest,
                         ::testing::Values(1, 2, 16, 64));

}  // namespace
}  // namespace canary::kv
