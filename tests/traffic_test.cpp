// Traffic subsystem tests: arrival-process determinism and rate
// matching, trace round-tripping, admission accounting, full-scenario
// conservation, and the autoscaler's safety invariants.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/network.hpp"
#include "faas/platform.hpp"
#include "faas/retry.hpp"
#include "harness/chaos.hpp"
#include "harness/scenario.hpp"
#include "obs/metric_registry.hpp"
#include "sim/simulator.hpp"
#include "traffic/admission.hpp"
#include "traffic/arrival.hpp"
#include "traffic/autoscaler.hpp"
#include "traffic/generator.hpp"

namespace canary::traffic {
namespace {

std::vector<TimePoint> collect(ArrivalProcess& p, Duration horizon,
                               std::size_t cap = 1u << 20) {
  std::vector<TimePoint> out;
  TimePoint cursor = TimePoint::origin();
  const TimePoint end = TimePoint::origin() + horizon;
  while (out.size() < cap) {
    const std::optional<TimePoint> at = p.next(cursor);
    if (!at.has_value() || *at > end) break;
    out.push_back(*at);
    cursor = *at;
  }
  return out;
}

ArrivalSpec spec_of(ArrivalSpec::Kind kind) {
  ArrivalSpec spec;
  spec.kind = kind;
  spec.rate_hz = 20.0;
  spec.off_rate_hz = 2.0;
  spec.on_mean = Duration::sec(3.0);
  spec.off_mean = Duration::sec(2.0);
  spec.amplitude = 0.6;
  spec.period = Duration::sec(40.0);
  if (kind == ArrivalSpec::Kind::kTrace) {
    for (int i = 0; i < 100; ++i) spec.trace.push_back(Duration::msec(i * 50));
  }
  return spec;
}

class ArrivalKindTest : public ::testing::TestWithParam<ArrivalSpec::Kind> {};

TEST_P(ArrivalKindTest, SameSeedSameStream) {
  const ArrivalSpec spec = spec_of(GetParam());
  auto a = make_arrival_process(spec, Rng(7));
  auto b = make_arrival_process(spec, Rng(7));
  const auto sa = collect(*a, Duration::sec(30.0));
  const auto sb = collect(*b, Duration::sec(30.0));
  ASSERT_FALSE(sa.empty());
  EXPECT_EQ(sa, sb);
}

TEST_P(ArrivalKindTest, ArrivalsStrictlyAdvance) {
  auto p = make_arrival_process(spec_of(GetParam()), Rng(11));
  const auto s = collect(*p, Duration::sec(30.0));
  ASSERT_GE(s.size(), 2u);
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_GT(s[i], s[i - 1]);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ArrivalKindTest,
                         ::testing::Values(ArrivalSpec::Kind::kPoisson,
                                           ArrivalSpec::Kind::kOnOff,
                                           ArrivalSpec::Kind::kDiurnal,
                                           ArrivalSpec::Kind::kTrace));

TEST(ArrivalTest, DifferentSeedsDifferentStreams) {
  const ArrivalSpec spec = spec_of(ArrivalSpec::Kind::kPoisson);
  auto a = make_arrival_process(spec, Rng(7));
  auto b = make_arrival_process(spec, Rng(8));
  EXPECT_NE(collect(*a, Duration::sec(10.0)),
            collect(*b, Duration::sec(10.0)));
}

// Property: over a long horizon, the empirical rate of every stochastic
// process matches the analytic mean within tolerance, across seeds.
class RateMatchTest
    : public ::testing::TestWithParam<std::tuple<ArrivalSpec::Kind, int>> {};

TEST_P(RateMatchTest, EmpiricalMatchesAnalyticRate) {
  const auto [kind, seed] = GetParam();
  const ArrivalSpec spec = spec_of(kind);
  const Duration horizon = Duration::sec(2000.0);
  auto p = make_arrival_process(spec, Rng(static_cast<std::uint64_t>(seed)));
  const auto arrivals = collect(*p, horizon);
  const double empirical =
      static_cast<double>(arrivals.size()) / horizon.to_seconds();
  const double analytic = spec.mean_rate_hz();
  ASSERT_GT(analytic, 0.0);
  EXPECT_NEAR(empirical / analytic, 1.0, 0.15)
      << "empirical " << empirical << " Hz vs analytic " << analytic << " Hz";
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByKind, RateMatchTest,
    ::testing::Combine(::testing::Values(ArrivalSpec::Kind::kPoisson,
                                         ArrivalSpec::Kind::kOnOff,
                                         ArrivalSpec::Kind::kDiurnal),
                       ::testing::Values(1, 2, 3, 4, 5)));

TEST(ArrivalTest, TraceRoundTripsBitExact) {
  std::vector<Duration> offsets;
  for (int i = 0; i < 64; ++i) {
    offsets.push_back(Duration::usec(i * 12345 + (i % 7)));
  }
  std::stringstream ss;
  write_trace(ss, offsets);
  const std::vector<Duration> back = parse_trace(ss);
  EXPECT_EQ(offsets, back);
}

TEST(ArrivalTest, TraceParserSkipsCommentsAndSorts) {
  std::stringstream ss("# header\n300\n\n100\n200  # inline\n");
  const std::vector<Duration> t = parse_trace(ss);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], Duration::usec(100));
  EXPECT_EQ(t[1], Duration::usec(200));
  EXPECT_EQ(t[2], Duration::usec(300));
}

// ---- admission ----------------------------------------------------------

TEST(AdmissionTest, AdmitsQueuesThenSheds) {
  std::vector<std::string> submitted;
  std::vector<std::string> shed;
  AdmissionController ctl(
      [&submitted](faas::JobSpec spec) { submitted.push_back(spec.name); },
      [&shed](faas::JobSpec spec) { shed.push_back(spec.name); });
  AdmissionClassConfig cfg;
  cfg.max_concurrent = 2;
  cfg.queue_capacity = 3;
  const std::size_t cls = ctl.add_class(cfg);

  std::vector<AdmissionOutcome> outcomes;
  for (int i = 0; i < 10; ++i) {
    faas::JobSpec job;
    job.name = "j" + std::to_string(i);
    outcomes.push_back(ctl.offer(cls, std::move(job)));
  }
  EXPECT_EQ(outcomes[0], AdmissionOutcome::kAdmitted);
  EXPECT_EQ(outcomes[1], AdmissionOutcome::kAdmitted);
  EXPECT_EQ(outcomes[2], AdmissionOutcome::kQueued);
  EXPECT_EQ(outcomes[4], AdmissionOutcome::kQueued);
  EXPECT_EQ(outcomes[5], AdmissionOutcome::kShed);
  EXPECT_EQ(outcomes[9], AdmissionOutcome::kShed);

  const auto& stats = ctl.stats(cls);
  EXPECT_EQ(stats.offered, 10u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.shed, 5u);
  EXPECT_EQ(stats.queue_peak, 3u);
  EXPECT_EQ(ctl.total_queued(), 3u);
  EXPECT_EQ(ctl.total_in_flight(), 2u);

  // Completions pump the backlog in FIFO order.
  ctl.on_complete(cls);
  ASSERT_EQ(submitted.size(), 3u);
  EXPECT_EQ(submitted[2], "j2");
  ctl.on_complete(cls);
  ctl.on_complete(cls);
  EXPECT_EQ(submitted.back(), "j4");
  EXPECT_EQ(ctl.total_queued(), 0u);
  // Conservation: offered == admitted + shed + still-queued.
  EXPECT_EQ(stats.offered, stats.admitted + stats.shed + ctl.total_queued());
}

TEST(AdmissionTest, RejectAdmittedRollsBackToShed) {
  int submitted = 0;
  AdmissionController ctl([&submitted](faas::JobSpec) { ++submitted; },
                          [](faas::JobSpec) {});
  AdmissionClassConfig cfg;
  cfg.max_concurrent = 1;
  const std::size_t cls = ctl.add_class(cfg);
  (void)ctl.offer(cls, {});
  EXPECT_EQ(ctl.stats(cls).admitted, 1u);
  ctl.reject_admitted(cls);
  EXPECT_EQ(ctl.stats(cls).admitted, 0u);
  EXPECT_EQ(ctl.stats(cls).shed, 1u);
  EXPECT_EQ(ctl.total_in_flight(), 0u);
}

// ---- full-scenario conservation and determinism -------------------------

harness::ScenarioConfig traffic_scenario(double rate_hz,
                                         std::size_t max_concurrent,
                                         bool autoscale = false) {
  harness::ScenarioConfig config;
  config.strategy = recovery::StrategyConfig::retry();
  config.error_rate = 0.0;
  config.cluster_nodes = 4;
  config.seed = 77;
  config.traffic.enabled = true;
  config.traffic.horizon = Duration::sec(10.0);
  StreamConfig stream;
  stream.name = "web";
  stream.fn.runtime = faas::RuntimeImage::kPython3;
  stream.fn.states.push_back({Duration::msec(200), {}});
  stream.fn.finalize = Duration::msec(50);
  stream.arrival.kind = ArrivalSpec::Kind::kPoisson;
  stream.arrival.rate_hz = rate_hz;
  stream.admission.max_concurrent = max_concurrent;
  stream.admission.queue_capacity = 8;
  config.traffic.streams.push_back(std::move(stream));
  config.traffic.autoscaler.enabled = autoscale;
  return config;
}

TEST(TrafficScenarioTest, ConservationHoldsUnderload) {
  const auto result =
      harness::ScenarioRunner::run(traffic_scenario(10.0, 16), {});
  const auto& t = result.traffic;
  ASSERT_TRUE(t.enabled);
  EXPECT_GT(t.offered, 0u);
  EXPECT_GT(t.completed, 0u);
  EXPECT_TRUE(t.conservation_ok);
  EXPECT_EQ(t.in_flight, 0u);
  EXPECT_EQ(t.queued_end, 0u);
  EXPECT_EQ(t.offered, t.admitted + t.shed);
  EXPECT_GT(t.latency_p50_ms, 0.0);
}

TEST(TrafficScenarioTest, OverloadShedsButConservationHolds) {
  // 40 Hz offered into a single-slot class: most arrivals must shed, and
  // every one of them must still be accounted for.
  const auto result =
      harness::ScenarioRunner::run(traffic_scenario(40.0, 1), {});
  const auto& t = result.traffic;
  EXPECT_GT(t.shed, 0u);
  EXPECT_TRUE(t.conservation_ok);
  EXPECT_EQ(t.offered, t.admitted + t.shed);
  EXPECT_EQ(t.admitted, t.completed + t.failed);
  // Shed arrivals surface as terminal invocations, never silently vanish.
  auto it = result.counters.find("functions_shed");
  ASSERT_NE(it, result.counters.end());
  EXPECT_EQ(static_cast<std::uint64_t>(it->second), t.shed);
}

TEST(TrafficScenarioTest, DeterministicForSameSeed) {
  const auto config = traffic_scenario(15.0, 4, /*autoscale=*/true);
  const auto a = harness::ScenarioRunner::run(config, {});
  const auto b = harness::ScenarioRunner::run(config, {});
  EXPECT_EQ(a.traffic.offered, b.traffic.offered);
  EXPECT_EQ(a.traffic.admitted, b.traffic.admitted);
  EXPECT_EQ(a.traffic.shed, b.traffic.shed);
  EXPECT_EQ(a.traffic.completed, b.traffic.completed);
  EXPECT_EQ(a.traffic.scale_ups, b.traffic.scale_ups);
  EXPECT_EQ(a.traffic.latency_p99_ms, b.traffic.latency_p99_ms);
  EXPECT_EQ(a.simulated_events, b.simulated_events);
}

TEST(TrafficScenarioTest, DisabledTrafficLeavesSummaryEmpty) {
  harness::ScenarioConfig config;
  config.strategy = recovery::StrategyConfig::retry();
  config.cluster_nodes = 4;
  faas::JobSpec job;
  job.name = "batch";
  faas::FunctionSpec fn;
  fn.name = "f";
  fn.states.push_back({Duration::msec(100), {}});
  job.functions.push_back(fn);
  const auto result = harness::ScenarioRunner::run(config, {job});
  EXPECT_FALSE(result.traffic.enabled);
  EXPECT_EQ(result.traffic.offered, 0u);
  EXPECT_EQ(result.counters.find("traffic_offered"), result.counters.end());
}

// ---- autoscaler invariants ----------------------------------------------

/// Direct-drive fixture: platform + generator + autoscaler without the
/// harness, so the test can inspect retired container ids and events.
class AutoscalerTest : public ::testing::Test {
 protected:
  AutoscalerTest() : cluster_(nodes()), network_(&cluster_, {}) {}

  static std::vector<cluster::NodeSpec> nodes() {
    std::vector<cluster::NodeSpec> specs(4);
    for (auto& s : specs) {
      s.cpu = cluster::CpuClass::kXeonGold6242;
      s.container_slots = 32;
    }
    return specs;
  }

  void run(TrafficConfig config) {
    faas::PlatformConfig pc;
    pc.reuse_containers = true;
    platform_.emplace(sim_, cluster_, network_, pc, metrics_);
    retry_.emplace(*platform_);
    platform_->set_recovery_handler(&*retry_);
    generator_.emplace(sim_, *platform_, std::move(config),
                       [this](faas::JobSpec spec) {
                         return platform_->submit_job(std::move(spec));
                       },
                       Rng(13).child(4));
    platform_->add_observer(&*generator_);
    autoscaler_.emplace(sim_, *platform_, *generator_);
    platform_->add_observer(&*autoscaler_);
    autoscaler_->start();
    generator_->start();
    sim_.run();
  }

  static TrafficConfig bursty_config() {
    TrafficConfig config;
    config.enabled = true;
    config.horizon = Duration::sec(12.0);
    StreamConfig stream;
    stream.name = "burst";
    stream.fn.runtime = faas::RuntimeImage::kPython3;
    stream.fn.states.push_back({Duration::msec(300), {}});
    stream.fn.finalize = Duration::msec(50);
    stream.arrival.kind = ArrivalSpec::Kind::kOnOff;
    stream.arrival.rate_hz = 20.0;
    stream.arrival.off_rate_hz = 0.5;
    stream.arrival.on_mean = Duration::sec(2.0);
    stream.arrival.off_mean = Duration::sec(2.0);
    stream.admission.max_concurrent = 16;
    stream.admission.queue_capacity = 32;
    config.streams.push_back(std::move(stream));
    config.autoscaler.enabled = true;
    config.autoscaler.max_warm = 8;
    config.autoscaler.scale_in_cooldown = Duration::sec(1.0);
    config.autoscaler.drain_grace = Duration::sec(60.0);
    return config;
  }

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::NetworkModel network_;
  obs::MetricRegistry metrics_;
  std::optional<faas::Platform> platform_;
  std::optional<faas::RetryHandler> retry_;
  std::optional<TrafficGenerator> generator_;
  std::optional<WarmPoolAutoscaler> autoscaler_;
};

TEST_F(AutoscalerTest, ScalesUpUnderBurstAndDrainsToZero) {
  run(bursty_config());
  EXPECT_GT(autoscaler_->scale_ups(), 0u);
  // Every container the autoscaler launched was retired or adopted by the
  // end of the drain; destroy_warm_container CHECK-fails on a busy or
  // replica container, so reaching this line proves the safety invariant.
  for (const ContainerId id : autoscaler_->retired()) {
    EXPECT_EQ(platform_->container(id).purpose,
              faas::ContainerPurpose::kFunction);
  }
  EXPECT_TRUE(generator_->quiescent());
}

TEST_F(AutoscalerTest, NeverRetiresReplicaOrForeignContainers) {
  run(bursty_config());
  // The autoscaler only ever destroys ids it launched itself: every
  // retired id must appear in its launch ledger (the launched counter
  // bounds the retirement count).
  const double launched = metrics_.counter("autoscaler_containers_launched");
  const double retired = metrics_.counter("autoscaler_containers_retired");
  EXPECT_LE(retired, launched);
  EXPECT_GT(launched, 0.0);
}

TEST_F(AutoscalerTest, RespectsScaleUpCooldown) {
  run(bursty_config());
  const AutoscalerConfig cfg = bursty_config().autoscaler;
  std::optional<TimePoint> last_up;
  for (const WarmPoolAutoscaler::ScaleEvent& e : autoscaler_->events()) {
    EXPECT_LE(e.count, cfg.max_step);
    if (!e.up) continue;
    if (last_up.has_value()) {
      EXPECT_GE(e.at - *last_up, cfg.scale_up_cooldown);
    }
    last_up = e.at;
  }
}

// ---- chaos integration ---------------------------------------------------

TEST(TrafficChaosTest, BurstPlusNodeFailurePassesAllOracles) {
  for (std::uint64_t seed : {70001u, 70002u, 70003u}) {
    const harness::ChaosOutcome outcome =
        harness::run_traffic_chaos_scenario(seed);
    EXPECT_TRUE(outcome.violations.empty())
        << "seed " << seed << ": " << outcome.violations.front();
    EXPECT_GT(outcome.traffic_offered, 0u) << "seed " << seed;
    EXPECT_EQ(outcome.traffic_offered,
              outcome.traffic_admitted + outcome.traffic_shed)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace canary::traffic
