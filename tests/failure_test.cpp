// Unit tests for the failure injector.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/network.hpp"
#include "failure/injector.hpp"
#include "faas/retry.hpp"

namespace canary::failure {
namespace {

faas::FunctionSpec tiny_function() {
  faas::FunctionSpec fn;
  fn.name = "f";
  fn.states.push_back({Duration::sec(1.0), {}});
  return fn;
}

faas::Invocation fake_invocation(std::uint64_t id) {
  static faas::FunctionSpec spec = tiny_function();
  faas::Invocation inv;
  inv.id = FunctionId{id};
  inv.spec = &spec;
  return inv;
}

TEST(FailureInjectorTest, ZeroRateNeverKills) {
  FailureInjector injector(Rng(1), {0.0, InjectionMode::kOncePerFunction, 1});
  for (std::uint64_t i = 1; i <= 100; ++i) {
    EXPECT_FALSE(injector.plan_kill(fake_invocation(i), 1, Duration::sec(10))
                     .has_value());
  }
  EXPECT_EQ(injector.planned_kills(), 0u);
}

TEST(FailureInjectorTest, FullRateKillsEveryFunctionOnce) {
  FailureInjector injector(Rng(2), {1.0, InjectionMode::kOncePerFunction, 1});
  for (std::uint64_t i = 1; i <= 50; ++i) {
    auto inv = fake_invocation(i);
    const auto kill = injector.plan_kill(inv, 1, Duration::sec(10));
    ASSERT_TRUE(kill.has_value());
    EXPECT_GE(kill->count_usec(), 0);
    EXPECT_LE(*kill, Duration::sec(10));
    // Second attempt of the same function runs clean.
    EXPECT_FALSE(injector.plan_kill(inv, 2, Duration::sec(10)).has_value());
  }
  EXPECT_EQ(injector.planned_kills(), 50u);
}

TEST(FailureInjectorTest, ErrorRateMatchesFractionOfFunctions) {
  FailureInjector injector(Rng(3), {0.25, InjectionMode::kOncePerFunction, 1});
  int killed = 0;
  const int n = 20000;
  for (std::uint64_t i = 1; i <= n; ++i) {
    if (injector.plan_kill(fake_invocation(i), 1, Duration::sec(5))) ++killed;
  }
  EXPECT_NEAR(static_cast<double>(killed) / n, 0.25, 0.01);
}

TEST(FailureInjectorTest, DecisionIsPerFunctionDeterministic) {
  // Two injectors with the same seed agree on every function's fate even
  // if queried in different orders.
  FailureInjector a(Rng(7), {0.5, InjectionMode::kOncePerFunction, 1});
  FailureInjector b(Rng(7), {0.5, InjectionMode::kOncePerFunction, 1});
  std::vector<std::optional<Duration>> from_a;
  for (std::uint64_t i = 1; i <= 20; ++i) {
    from_a.push_back(a.plan_kill(fake_invocation(i), 1, Duration::sec(1)));
  }
  for (std::uint64_t i = 20; i >= 1; --i) {
    const auto kill = b.plan_kill(fake_invocation(i), 1, Duration::sec(1));
    EXPECT_EQ(kill.has_value(), from_a[i - 1].has_value());
    if (kill && from_a[i - 1]) {
      EXPECT_EQ(*kill, *from_a[i - 1]);
    }
  }
}

TEST(FailureInjectorTest, KillOnLaterAttempt) {
  FailureInjector injector(Rng(4), {1.0, InjectionMode::kOncePerFunction, 2});
  auto inv = fake_invocation(1);
  EXPECT_FALSE(injector.plan_kill(inv, 1, Duration::sec(1)).has_value());
  EXPECT_TRUE(injector.plan_kill(inv, 2, Duration::sec(1)).has_value());
  EXPECT_FALSE(injector.plan_kill(inv, 3, Duration::sec(1)).has_value());
}

TEST(FailureInjectorTest, PerAttemptModeResamples) {
  FailureInjector injector(Rng(5), {1.0, InjectionMode::kPerAttempt, 1});
  auto inv = fake_invocation(1);
  // Rate 1.0: every attempt is killed.
  for (int attempt = 1; attempt <= 5; ++attempt) {
    EXPECT_TRUE(
        injector.plan_kill(inv, attempt, Duration::sec(1)).has_value());
  }
}

TEST(FailureInjectorTest, PerAttemptRateIsPerAttempt) {
  FailureInjector injector(Rng(6), {0.3, InjectionMode::kPerAttempt, 1});
  int kills = 0;
  const int n = 20000;
  for (std::uint64_t i = 1; i <= n; ++i) {
    if (injector.plan_kill(fake_invocation(i), 2, Duration::sec(1))) ++kills;
  }
  EXPECT_NEAR(static_cast<double>(kills) / n, 0.3, 0.01);
}

TEST(FailureInjectorTest, KillOffsetScalesWithBusyEstimate) {
  FailureInjector injector(Rng(8), {1.0, InjectionMode::kOncePerFunction, 1});
  FailureInjector injector2(Rng(8), {1.0, InjectionMode::kOncePerFunction, 1});
  const auto short_kill =
      injector.plan_kill(fake_invocation(1), 1, Duration::sec(1));
  const auto long_kill =
      injector2.plan_kill(fake_invocation(1), 1, Duration::sec(100));
  ASSERT_TRUE(short_kill && long_kill);
  // Same fraction, different scale (integer-microsecond truncation allows
  // up to 100 us of slack after scaling).
  EXPECT_NEAR(long_kill->to_seconds(), short_kill->to_seconds() * 100.0, 1e-4);
}

TEST(FailureInjectorTest, HazardRateFirstAttemptMatchesErrorRate) {
  FailureInjector injector(Rng(12), {0.3, InjectionMode::kHazardRate, 1});
  int kills = 0;
  const int n = 20000;
  for (std::uint64_t i = 1; i <= n; ++i) {
    // First query fixes the reference exposure: probability == error rate.
    if (injector.plan_kill(fake_invocation(i), 1, Duration::sec(10))) ++kills;
  }
  EXPECT_NEAR(static_cast<double>(kills) / n, 0.3, 0.01);
}

TEST(FailureInjectorTest, HazardRateShortAttemptsRarelyDie) {
  FailureInjector injector(Rng(13), {0.5, InjectionMode::kHazardRate, 1});
  int long_kills = 0, short_kills = 0;
  const int n = 20000;
  for (std::uint64_t i = 1; i <= n; ++i) {
    auto inv = fake_invocation(i);
    // Attempt 1 sets the 10s reference; attempt 2 is a checkpoint-resumed
    // 1s stub with a tenth of the exposure.
    if (injector.plan_kill(inv, 1, Duration::sec(10))) ++long_kills;
    if (injector.plan_kill(inv, 2, Duration::sec(1))) ++short_kills;
  }
  // p_long = 0.5; p_short = 1 - 0.5^(0.1) ~= 0.067.
  EXPECT_NEAR(static_cast<double>(long_kills) / n, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(short_kills) / n, 0.067, 0.01);
}

TEST(FailureInjectorTest, HazardRateLongerExposureDiesMore) {
  FailureInjector injector(Rng(14), {0.2, InjectionMode::kHazardRate, 1});
  int double_kills = 0;
  const int n = 20000;
  for (std::uint64_t i = 1; i <= n; ++i) {
    auto inv = fake_invocation(i);
    (void)injector.plan_kill(inv, 1, Duration::sec(10));  // set reference
    // A retry attempt that somehow runs twice as long is exposed twice.
    if (injector.plan_kill(inv, 2, Duration::sec(20))) ++double_kills;
  }
  // p = 1 - 0.8^2 = 0.36.
  EXPECT_NEAR(static_cast<double>(double_kills) / n, 0.36, 0.012);
}

TEST(FailureInjectorTest, NodeFailureTakesDownNodeAndKvCopies) {
  sim::Simulator sim;
  auto cluster = cluster::Cluster::testbed(4);
  cluster::NetworkModel network(&cluster, {});
  obs::MetricRegistry metrics;
  faas::Platform platform(sim, cluster, network, {}, metrics);
  faas::RetryHandler retry(platform);
  platform.set_recovery_handler(&retry);
  kv::KvConfig kv_config;
  kv_config.native_persistence = false;
  kv::KvStore store(kv_config, cluster.node_ids());
  ASSERT_TRUE(store.put("k", "v").ok());

  FailureInjector injector(Rng(9), {0.0, InjectionMode::kOncePerFunction, 1});
  injector.schedule_node_failure(sim, platform, &store,
                                 TimePoint::origin() + Duration::sec(1.0));
  sim.run();
  EXPECT_EQ(injector.node_kills(), 1u);
  EXPECT_EQ(cluster.alive_count(), 3u);
  EXPECT_TRUE(store.contains("k"));  // replicated on surviving nodes
}

TEST(FailureInjectorTest, HazardRateHalfExposureMatchesFormula) {
  // p(d) = 1 - (1 - e)^(d / first_attempt): a resumed attempt running
  // half the reference exposure with e = 0.4 dies with 1 - 0.6^0.5.
  FailureInjector injector(Rng(15), {0.4, InjectionMode::kHazardRate, 1});
  int kills = 0;
  const int n = 20000;
  for (std::uint64_t i = 1; i <= n; ++i) {
    auto inv = fake_invocation(i);
    (void)injector.plan_kill(inv, 1, Duration::sec(10));  // set reference
    if (injector.plan_kill(inv, 2, Duration::sec(5))) ++kills;
  }
  EXPECT_NEAR(static_cast<double>(kills) / n, 1.0 - std::pow(0.6, 0.5), 0.01);
}

TEST(FailureInjectorTest, HazardRateDeterministicAcrossInjectors) {
  // Identically-seeded injectors agree on every attempt's fate and kill
  // offset — the chaos campaign's replayability depends on it.
  FailureInjector a(Rng(16), {0.5, InjectionMode::kHazardRate, 1});
  FailureInjector b(Rng(16), {0.5, InjectionMode::kHazardRate, 1});
  for (std::uint64_t i = 1; i <= 200; ++i) {
    auto inv = fake_invocation(i);
    for (int attempt = 1; attempt <= 3; ++attempt) {
      const Duration busy = attempt == 1 ? Duration::sec(10) : Duration::sec(2);
      const auto ka = a.plan_kill(inv, attempt, busy);
      const auto kb = b.plan_kill(inv, attempt, busy);
      ASSERT_EQ(ka.has_value(), kb.has_value());
      if (ka) {
        EXPECT_EQ(*ka, *kb);
      }
    }
  }
}

TEST(FailureInjectorTest, NodeFailureSkipsAlreadyDeadVictim) {
  // Two failure events aimed at the same node must kill it exactly once:
  // the second fires after the victim is already dead and is skipped, so
  // its KV entries are not double-dropped.
  sim::Simulator sim;
  auto cluster = cluster::Cluster::testbed(4);
  cluster::NetworkModel network(&cluster, {});
  obs::MetricRegistry metrics;
  faas::Platform platform(sim, cluster, network, {}, metrics);
  faas::RetryHandler retry(platform);
  platform.set_recovery_handler(&retry);
  kv::KvConfig kv_config;
  kv_config.mode = kv::CacheMode::kPartitioned;
  kv_config.backups = 0;
  kv_config.native_persistence = false;
  kv::KvStore store(kv_config, cluster.node_ids());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(store.put("ckpt/k" + std::to_string(i), "v").ok());
  }

  FailureInjector injector(Rng(11), {0.0, InjectionMode::kOncePerFunction, 1});
  const NodeId victim{2};
  injector.schedule_node_failure(sim, platform, &store,
                                 TimePoint::origin() + Duration::sec(1.0),
                                 victim);
  injector.schedule_node_failure(sim, platform, &store,
                                 TimePoint::origin() + Duration::sec(2.0),
                                 victim);
  sim.run();
  EXPECT_EQ(injector.node_kills(), 1u);
  EXPECT_EQ(injector.skipped_node_kills(), 1u);
  EXPECT_EQ(cluster.alive_count(), 3u);
  // Partitioned with zero backups: the victim's single-copy entries are
  // lost exactly once; the skipped re-kill must not recount them.
  const auto stats = store.stats();
  EXPECT_GT(stats.entries_lost, 0u);
  EXPECT_EQ(store.size() + stats.entries_lost, 64u);
}

TEST(FailureInjectorTest, NodeFailureSparesLastNode) {
  sim::Simulator sim;
  auto cluster = cluster::Cluster::testbed(1);
  cluster::NetworkModel network(&cluster, {});
  obs::MetricRegistry metrics;
  faas::Platform platform(sim, cluster, network, {}, metrics);
  FailureInjector injector(Rng(10), {0.0, InjectionMode::kOncePerFunction, 1});
  injector.schedule_node_failure(sim, platform, nullptr,
                                 TimePoint::origin() + Duration::sec(1.0));
  sim.run();
  EXPECT_EQ(injector.node_kills(), 0u);
  EXPECT_EQ(cluster.alive_count(), 1u);
}

}  // namespace
}  // namespace canary::failure
