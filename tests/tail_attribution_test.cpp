// End-to-end tests for the tail-latency attribution engine: a seeded
// node-failure scenario must yield, for every target percentile, a
// representative exemplar whose causal chain resolves completely and
// whose component attribution sums to its measured latency within one
// simulated millisecond — the acceptance bound that makes "61% of the
// p99.9 is detection" an exact statement rather than an estimate.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/scenario.hpp"
#include "obs/report.hpp"
#include "obs/tail_analyzer.hpp"
#include "recovery/strategies.hpp"
#include "workloads/workloads.hpp"

namespace canary {
namespace {

harness::ScenarioConfig attribution_scenario() {
  harness::ScenarioConfig config;
  config.strategy = recovery::StrategyConfig::canary_full();
  config.error_rate = 0.2;
  config.cluster_nodes = 8;
  config.seed = 90210;
  // A node failure mid-run puts detection + restore into the tail, so
  // the attribution has non-trivial components to partition.
  config.node_failure_offsets.push_back(Duration::sec(6.0));
  config.tail.enabled = true;
  config.timeseries.enabled = true;
  return config;
}

std::vector<faas::JobSpec> attribution_jobs() {
  std::vector<faas::JobSpec> jobs;
  jobs.push_back(workloads::make_mixed_batch(24));
  return jobs;
}

TEST(TailAttributionTest, AttributionSumsToMeasuredLatencyWithinOneMs) {
  const harness::RunResult run =
      harness::ScenarioRunner::run(attribution_scenario(), attribution_jobs());
  ASSERT_TRUE(run.completed);
  ASSERT_TRUE(run.tail.enabled);
  ASSERT_FALSE(run.tail.groups.empty());

  std::size_t attributions = 0;
  for (const obs::TailGroup& group : run.tail.groups) {
    EXPECT_GT(group.exemplars, 0u) << group.metric;
    for (const obs::TailAttribution& a : group.percentiles) {
      EXPECT_GT(a.samples, 0u) << group.metric << " p" << a.percentile;
      if (!a.has_exemplar) continue;
      ++attributions;
      // The representative's exact latency vs. its causal partition:
      // the two are derived independently (histogram sample vs. event
      // DAG walk) and must agree to 1 sim-ms.
      EXPECT_NEAR(a.attributed_s, a.latency_s, 1e-3)
          << group.metric << " p" << a.percentile << " trace " << a.trace;
      // The bucket estimate and the exemplar sit in the same region of
      // the distribution (the exemplar is picked at or above the rank).
      EXPECT_GE(a.latency_s, a.bucket_estimate_s * 0.98)
          << group.metric << " p" << a.percentile;
      // Every reported trace resolves to a complete causal chain.
      EXPECT_TRUE(a.chain_complete)
          << group.metric << " p" << a.percentile << " trace " << a.trace;
      EXPECT_GT(a.chain_events, 0u);
    }
  }
  EXPECT_GT(attributions, 0u) << "no percentile produced an attribution";
}

TEST(TailAttributionTest, PerFamilyHistogramsGetTheirOwnGroups) {
  const harness::RunResult run =
      harness::ScenarioRunner::run(attribution_scenario(), attribution_jobs());
  ASSERT_TRUE(run.tail.enabled);
  bool run_wide = false;
  bool per_family = false;
  for (const obs::TailGroup& group : run.tail.groups) {
    if (group.metric == "tail_latency") run_wide = true;
    if (group.metric.rfind("tail_latency.fn.", 0) == 0) per_family = true;
  }
  EXPECT_TRUE(run_wide) << "missing the run-wide tail_latency group";
  EXPECT_TRUE(per_family) << "missing per-function-family groups";
}

TEST(TailAttributionTest, TimeSeriesRollupsCoverTheRun) {
  const harness::RunResult run =
      harness::ScenarioRunner::run(attribution_scenario(), attribution_jobs());
  ASSERT_TRUE(run.timeseries.enabled());
  ASSERT_FALSE(run.timeseries.windows().empty());

  double completions = 0.0;
  double node_failures = 0.0;
  std::int64_t prev_start = -1;
  for (const obs::TimeSeries::Window& w : run.timeseries.windows()) {
    EXPECT_GT(w.start.count_usec(), prev_start) << "windows out of order";
    prev_start = w.start.count_usec();
    const auto c = w.counters.find("completions");
    if (c != w.counters.end()) completions += c->second;
    const auto n = w.counters.find("node_failures");
    if (n != w.counters.end()) node_failures += n->second;
  }
  EXPECT_GT(completions, 0.0) << "no completion landed in any window";
  EXPECT_EQ(node_failures, 1.0) << "the injected node failure is missing";
}

TEST(TailAttributionTest, DisabledLeavesReportOnV2WithNoNewSections) {
  harness::ScenarioConfig config = attribution_scenario();
  config.tail.enabled = false;
  config.timeseries.enabled = false;
  const std::vector<faas::JobSpec> jobs = attribution_jobs();

  const harness::Aggregate agg = harness::run_repetitions(config, jobs, 2);
  EXPECT_FALSE(agg.tail.enabled);
  EXPECT_FALSE(agg.timeseries.enabled());
  const std::string json =
      harness::make_report("tail_off_probe", config, agg).to_json();
  EXPECT_NE(json.find("canary.run_report/v2"), std::string::npos);
  EXPECT_EQ(json.find("\"tail\""), std::string::npos);
  EXPECT_EQ(json.find("\"timeseries\""), std::string::npos);
  // No tail histograms may even exist when attribution is off.
  EXPECT_EQ(json.find("tail_latency"), std::string::npos);
}

TEST(TailAttributionTest, EnabledUpgradesReportToV3) {
  const harness::ScenarioConfig config = attribution_scenario();
  const std::vector<faas::JobSpec> jobs = attribution_jobs();

  const harness::Aggregate agg = harness::run_repetitions(config, jobs, 2);
  EXPECT_TRUE(agg.tail.enabled);
  EXPECT_TRUE(agg.timeseries.enabled());
  const std::string json =
      harness::make_report("tail_on_probe", config, agg).to_json();
  EXPECT_NE(json.find("canary.run_report/v3"), std::string::npos);
  EXPECT_NE(json.find("\"tail\""), std::string::npos);
  EXPECT_NE(json.find("\"timeseries\""), std::string::npos);
  EXPECT_NE(json.find("\"chain_complete\""), std::string::npos);
}

TEST(TailAttributionTest, RepetitionMergeIsDeterministicAndAssociative) {
  const harness::ScenarioConfig config = attribution_scenario();
  const std::vector<faas::JobSpec> jobs = attribution_jobs();

  // Merging A into B and B into A must pick the same representative:
  // the deeper-tail exemplar, ties toward the smaller trace id.
  harness::ScenarioConfig other = config;
  other.seed = config.seed + 1;
  const harness::RunResult a = harness::ScenarioRunner::run(config, jobs);
  const harness::RunResult b = harness::ScenarioRunner::run(other, jobs);

  obs::TailReport ab = a.tail;
  ab.merge(b.tail);
  obs::TailReport ba = b.tail;
  ba.merge(a.tail);

  ASSERT_EQ(ab.groups.size(), ba.groups.size());
  for (std::size_t g = 0; g < ab.groups.size(); ++g) {
    EXPECT_EQ(ab.groups[g].metric, ba.groups[g].metric);
    EXPECT_EQ(ab.groups[g].exemplars, ba.groups[g].exemplars);
    ASSERT_EQ(ab.groups[g].percentiles.size(),
              ba.groups[g].percentiles.size());
    for (std::size_t i = 0; i < ab.groups[g].percentiles.size(); ++i) {
      const obs::TailAttribution& x = ab.groups[g].percentiles[i];
      const obs::TailAttribution& y = ba.groups[g].percentiles[i];
      EXPECT_EQ(x.samples, y.samples);
      EXPECT_EQ(x.trace, y.trace) << ab.groups[g].metric << " p"
                                  << x.percentile;
      EXPECT_DOUBLE_EQ(x.latency_s, y.latency_s);
    }
  }
}

}  // namespace
}  // namespace canary
