// Unit tests for the Replication Module (Algorithm 2) and the Runtime
// Manager Module.
#include <gtest/gtest.h>

#include <optional>

#include "canary/replication.hpp"
#include "canary/runtime_manager.hpp"
#include "cluster/network.hpp"
#include "faas/retry.hpp"

namespace canary::core {
namespace {

std::vector<cluster::NodeSpec> uniform_nodes(std::size_t n) {
  std::vector<cluster::NodeSpec> specs(n);
  std::uint32_t rack = 0;
  for (std::size_t i = 0; i < n; ++i) {
    specs[i].cpu = cluster::CpuClass::kXeonGold6242;
    specs[i].rack = rack;
    if (i % 4 == 3) ++rack;
  }
  return specs;
}

faas::FunctionSpec probe(faas::RuntimeImage image) {
  faas::FunctionSpec fn;
  fn.name = "probe";
  fn.runtime = image;
  fn.states.push_back({Duration::sec(5.0), {}});
  return fn;
}

class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest()
      : cluster_(uniform_nodes(8)),
        network_(&cluster_, {}),
        platform_(sim_, cluster_, network_, make_platform_config(), metrics_),
        retry_(platform_),
        manager_(platform_, cluster_, metadata_) {
    platform_.set_recovery_handler(&retry_);
  }

  static faas::PlatformConfig make_platform_config() {
    faas::PlatformConfig config;
    config.scheduler_overhead = Duration::zero();
    return config;
  }

  ReplicationModule make_module(ReplicationConfig config = {}) {
    return ReplicationModule(platform_, manager_, metadata_, metrics_, config);
  }

  JobId submit(faas::RuntimeImage image, std::size_t count) {
    faas::JobSpec job;
    job.name = "job";
    for (std::size_t i = 0; i < count; ++i) job.functions.push_back(probe(image));
    auto result = platform_.submit_job(std::move(job));
    EXPECT_TRUE(result.ok());
    return result.value();
  }

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::NetworkModel network_;
  obs::MetricRegistry metrics_;
  faas::Platform platform_;
  faas::RetryHandler retry_;
  MetadataStore metadata_;
  RuntimeManagerModule manager_;
};

// ---- runtime manager -----------------------------------------------------

TEST_F(ReplicationTest, RuntimeManagerLifecycle) {
  const auto rid = manager_.register_replica(faas::RuntimeImage::kPython3,
                                             NodeId{1}, ContainerId{10});
  EXPECT_TRUE(rid.valid());
  EXPECT_EQ(manager_.pending_count(faas::RuntimeImage::kPython3), 1u);
  EXPECT_EQ(manager_.active_count(faas::RuntimeImage::kPython3), 0u);
  manager_.mark_active(ContainerId{10});
  EXPECT_EQ(manager_.active_count(faas::RuntimeImage::kPython3), 1u);
  manager_.mark_dead(ContainerId{10});
  EXPECT_EQ(manager_.active_count(faas::RuntimeImage::kPython3), 0u);
}

TEST_F(ReplicationTest, AcquirePrefersLocality) {
  auto add_active = [&](std::uint64_t container, NodeId node) {
    manager_.register_replica(faas::RuntimeImage::kPython3, node,
                              ContainerId{container});
    manager_.mark_active(ContainerId{container});
  };
  add_active(1, NodeId{5});  // rack 1
  add_active(2, NodeId{2});  // rack 0, same rack as prefer
  add_active(3, NodeId{1});  // exact preferred node

  const auto picked = manager_.acquire(faas::RuntimeImage::kPython3, NodeId{1});
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(picked->worker, NodeId{1});
  // Consumed replicas are not offered again.
  const auto second = manager_.acquire(faas::RuntimeImage::kPython3, NodeId{1});
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->worker, NodeId{2});  // same rack beats other rack
  const auto third = manager_.acquire(faas::RuntimeImage::kPython3, NodeId{1});
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->worker, NodeId{5});
  EXPECT_FALSE(
      manager_.acquire(faas::RuntimeImage::kPython3, NodeId{1}).has_value());
}

TEST_F(ReplicationTest, AcquireSkipsDeadNodes) {
  manager_.register_replica(faas::RuntimeImage::kPython3, NodeId{3},
                            ContainerId{1});
  manager_.mark_active(ContainerId{1});
  cluster_.fail_node(NodeId{3});
  EXPECT_FALSE(
      manager_.acquire(faas::RuntimeImage::kPython3, std::nullopt).has_value());
}

TEST_F(ReplicationTest, RetireOnePicksNewest) {
  manager_.register_replica(faas::RuntimeImage::kPython3, NodeId{1},
                            ContainerId{1});
  manager_.mark_active(ContainerId{1});
  sim_.schedule_after(Duration::sec(1.0), [&] {
    manager_.register_replica(faas::RuntimeImage::kPython3, NodeId{2},
                              ContainerId{2});
    manager_.mark_active(ContainerId{2});
  });
  sim_.run();
  const auto retired = manager_.retire_one(faas::RuntimeImage::kPython3);
  ASSERT_TRUE(retired.has_value());
  EXPECT_EQ(*retired, ContainerId{2});
  EXPECT_EQ(manager_.active_count(faas::RuntimeImage::kPython3), 1u);
}

// ---- replication targets ---------------------------------------------------

TEST_F(ReplicationTest, TargetZeroWhenIdleOrDisabled) {
  auto dr = make_module();
  EXPECT_EQ(dr.target_replicas(faas::RuntimeImage::kPython3), 0u);
  ReplicationConfig off;
  off.enabled = false;
  auto disabled = make_module(off);
  disabled.on_job_submitted(submit(faas::RuntimeImage::kPython3, 10));
  EXPECT_EQ(disabled.target_replicas(faas::RuntimeImage::kPython3), 0u);
}

TEST_F(ReplicationTest, LenientKeepsExactlyOne) {
  ReplicationConfig config;
  config.mode = ReplicationMode::kLenient;
  auto module = make_module(config);
  module.on_job_submitted(submit(faas::RuntimeImage::kPython3, 40));
  EXPECT_EQ(module.target_replicas(faas::RuntimeImage::kPython3), 1u);
}

TEST_F(ReplicationTest, AggressiveScalesWithActiveFunctions) {
  ReplicationConfig config;
  config.mode = ReplicationMode::kAggressive;
  config.aggressive_fraction = 0.25;
  auto module = make_module(config);
  module.on_job_submitted(submit(faas::RuntimeImage::kPython3, 40));
  EXPECT_EQ(module.target_replicas(faas::RuntimeImage::kPython3), 10u);
}

TEST_F(ReplicationTest, DynamicFollowsObservedFailureRate) {
  ReplicationConfig config;
  config.mode = ReplicationMode::kDynamic;
  auto module = make_module(config);
  const JobId job = submit(faas::RuntimeImage::kPython3, 40);
  module.on_job_submitted(job);
  const auto before = module.target_replicas(faas::RuntimeImage::kPython3);
  EXPECT_GE(before, 1u);

  // Report many failures: the posterior rate and the target rise.
  faas::Invocation inv;
  const auto& spec = platform_.job_spec(job);
  inv.spec = &spec.functions.front();
  for (int i = 0; i < 20; ++i) module.on_failure_observed(inv);
  const auto after = module.target_replicas(faas::RuntimeImage::kPython3);
  EXPECT_GT(after, before);
  // Bounded by the cap fraction.
  EXPECT_LE(after, static_cast<unsigned>(40 * config.dynamic_cap_fraction) + 1);
  EXPECT_GT(module.estimated_failure_rate(), 0.2);
}

TEST_F(ReplicationTest, ReconcileLaunchesAndPlacesAntiSpof) {
  ReplicationConfig config;
  config.mode = ReplicationMode::kAggressive;
  config.aggressive_fraction = 0.25;
  auto module = make_module(config);
  module.on_job_submitted(submit(faas::RuntimeImage::kPython3, 12));
  // Target = 3; all should be launching on distinct nodes.
  EXPECT_EQ(manager_.pending_count(faas::RuntimeImage::kPython3), 3u);
  const auto nodes = manager_.replica_nodes(faas::RuntimeImage::kPython3);
  EXPECT_EQ(nodes.size(), 3u);  // deduplicated => all distinct
  sim_.run();
  EXPECT_GE(metrics_.counter("replicas_launched"), 3.0);
}

TEST_F(ReplicationTest, CompletionRetiresExcessReplicas) {
  ReplicationConfig config;
  config.mode = ReplicationMode::kAggressive;
  config.aggressive_fraction = 0.5;
  auto module = make_module(config);
  const JobId job = submit(faas::RuntimeImage::kPython3, 4);
  module.on_job_submitted(job);  // target 2
  sim_.run_until(TimePoint::origin() + Duration::sec(2.0));  // replicas warm
  ASSERT_EQ(manager_.active_count(faas::RuntimeImage::kPython3), 2u);

  // Complete all functions: targets drop to zero and replicas retire.
  for (const auto fid : platform_.job_functions(job)) {
    module.on_function_completed(platform_.invocation(fid));
  }
  EXPECT_EQ(manager_.active_count(faas::RuntimeImage::kPython3), 0u);
  EXPECT_GE(metrics_.counter("replicas_retired"), 2.0);
}

TEST_F(ReplicationTest, ConsumedReplicaIsReplaced) {
  ReplicationConfig config;
  config.mode = ReplicationMode::kLenient;
  auto module = make_module(config);
  module.on_job_submitted(submit(faas::RuntimeImage::kPython3, 4));
  sim_.run_until(TimePoint::origin() + Duration::sec(2.0));
  ASSERT_EQ(manager_.active_count(faas::RuntimeImage::kPython3), 1u);

  const auto acquired =
      manager_.acquire(faas::RuntimeImage::kPython3, std::nullopt);
  ASSERT_TRUE(acquired.has_value());
  module.on_replica_consumed(faas::RuntimeImage::kPython3);
  // A replacement replica is launching.
  EXPECT_EQ(manager_.pending_count(faas::RuntimeImage::kPython3), 1u);
}

TEST_F(ReplicationTest, ModeLabels) {
  EXPECT_EQ(to_string_view(ReplicationMode::kDynamic), "dynamic");
  EXPECT_EQ(to_string_view(ReplicationMode::kAggressive), "aggressive");
  EXPECT_EQ(to_string_view(ReplicationMode::kLenient), "lenient");
}

}  // namespace
}  // namespace canary::core
