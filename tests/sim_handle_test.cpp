// Regression tests for EventHandle lifetime semantics on the slab-backed
// engine: cancel-after-fire, double-cancel, generation ABA across slot
// reuse, handles outliving run(), and default-constructed / moved-from
// handles. These pin down the contract that used to be implicit (and in
// the case of pending() on an empty handle, broken) in the shared_ptr
// engine.
#include <gtest/gtest.h>

#include <functional>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace canary::sim {
namespace {

TEST(SimHandleTest, DefaultConstructedHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must not crash
  handle.cancel();
  EXPECT_FALSE(handle.pending());
}

TEST(SimHandleTest, CancelAfterFireIsNoOp) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.schedule_after(Duration::msec(1), [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.pending());
  h.cancel();  // the event already fired; this must change nothing
  EXPECT_EQ(sim.executed_events(), 1u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimHandleTest, DoubleCancelIsNoOp) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.schedule_after(Duration::msec(1), [&] { ++fired; });
  h.cancel();
  EXPECT_FALSE(h.pending());
  h.cancel();  // second cancel on the same handle
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(SimHandleTest, CopiedHandlesShareTheEvent) {
  Simulator sim;
  int fired = 0;
  EventHandle a = sim.schedule_after(Duration::msec(1), [&] { ++fired; });
  EventHandle b = a;
  EXPECT_TRUE(a.pending());
  EXPECT_TRUE(b.pending());
  a.cancel();
  EXPECT_FALSE(b.pending());
  b.cancel();  // already cancelled through the copy
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(SimHandleTest, MovedFromHandleIsInert) {
  Simulator sim;
  int fired = 0;
  EventHandle a = sim.schedule_after(Duration::msec(1), [&] { ++fired; });
  EventHandle b = std::move(a);
  EXPECT_FALSE(a.pending());  // NOLINT(bugprone-use-after-move): on purpose
  a.cancel();                 // must not cancel the event b now owns
  EXPECT_TRUE(b.pending());
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(SimHandleTest, MoveAssignSelfIsSafe) {
  Simulator sim;
  EventHandle a = sim.schedule_after(Duration::msec(1), [] {});
  EventHandle* alias = &a;  // defeat -Wself-move
  a = std::move(*alias);
  EXPECT_TRUE(a.pending());
  a.cancel();
  EXPECT_FALSE(a.pending());
}

// The ABA scenario: a stale handle whose slot has been freed and reused
// by a newer event must neither report pending nor cancel the newcomer.
TEST(SimHandleTest, StaleHandleDoesNotTouchReusedSlot) {
  Simulator sim;
  int first_fired = 0;
  int second_fired = 0;
  EventHandle first =
      sim.schedule_after(Duration::msec(1), [&] { ++first_fired; });
  sim.run();  // fires; the slot goes back on the free list
  EXPECT_EQ(first_fired, 1);

  // The next schedule reuses the same slab slot with a bumped generation.
  EventHandle second =
      sim.schedule_after(Duration::msec(1), [&] { ++second_fired; });
  EXPECT_FALSE(first.pending());
  first.cancel();  // stale: must not cancel `second`
  EXPECT_TRUE(second.pending());
  sim.run();
  EXPECT_EQ(second_fired, 1);
}

TEST(SimHandleTest, StaleHandleAfterCancelDoesNotTouchReusedSlot) {
  Simulator sim;
  int fired = 0;
  EventHandle doomed = sim.schedule_after(Duration::msec(1), [&] { ++fired; });
  doomed.cancel();
  sim.run();  // reclaims the cancelled slot
  EXPECT_EQ(fired, 0);

  EventHandle fresh = sim.schedule_after(Duration::msec(1), [&] { ++fired; });
  EXPECT_FALSE(doomed.pending());
  doomed.cancel();
  EXPECT_TRUE(fresh.pending());
  sim.run();
  EXPECT_EQ(fired, 1);
}

// Handles must stay safe to query and cancel after run() drained the
// queue — slots freed at dispatch keep their records alive in the slab.
TEST(SimHandleTest, HandlesOutliveRun) {
  Simulator sim;
  std::vector<EventHandle> handles;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(
        sim.schedule_after(Duration::msec(i + 1), [&] { ++fired; }));
  }
  sim.run();
  EXPECT_EQ(fired, 100);
  for (auto& h : handles) {
    EXPECT_FALSE(h.pending());
    h.cancel();
  }
  EXPECT_EQ(sim.executed_events(), 100u);
}

TEST(SimHandleTest, PendingCountExcludesCancelledEvents) {
  Simulator sim;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(sim.schedule_after(Duration::msec(1), [] {}));
  }
  EXPECT_EQ(sim.pending_events(), 10u);
  for (int i = 0; i < 4; ++i) handles[i].cancel();
  EXPECT_EQ(sim.pending_events(), 6u);
  EXPECT_FALSE(sim.empty());
  for (int i = 4; i < 10; ++i) handles[i].cancel();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.run(), 0u);
}

// Mass cancellation triggers the lazy-deletion compaction; the surviving
// events must still fire exactly once, in time order.
TEST(SimHandleTest, CompactionPreservesSurvivors) {
  SimulatorOptions options;
  options.compact_min = 16;
  Simulator sim(options);
  std::vector<EventHandle> doomed;
  std::vector<int> fired;
  for (int i = 0; i < 1000; ++i) {
    if (i % 10 == 0) {
      const int tag = i;
      sim.schedule_after(Duration::msec(1000 - i), [&, tag] {
        fired.push_back(tag);
      });
    } else {
      doomed.push_back(sim.schedule_after(Duration::msec(1000 - i), [] {}));
    }
  }
  for (auto& h : doomed) h.cancel();
  EXPECT_EQ(sim.pending_events(), 100u);
  sim.run();
  ASSERT_EQ(fired.size(), 100u);
  // Scheduled at msec(1000 - i) for i = 0,10,...,990: fires in
  // descending-tag order.
  for (std::size_t k = 0; k < fired.size(); ++k) {
    EXPECT_EQ(fired[k], 990 - static_cast<int>(k) * 10);
  }
  EXPECT_EQ(sim.executed_events(), 100u);
}

// run_until must not dispatch an event past `until` even when cancelled
// tombstones precede it in the heap (regression: the old engine popped a
// tombstone below the horizon and then dispatched the next live event
// unconditionally, even if it was past the horizon).
TEST(SimHandleTest, RunUntilHonorsHorizonPastCancelledHead) {
  Simulator sim;
  EventHandle early = sim.schedule_after(Duration::msec(1), [] {});
  int late_fired = 0;
  sim.schedule_after(Duration::msec(100), [&] { ++late_fired; });
  early.cancel();
  EXPECT_EQ(sim.run_until(TimePoint::origin() + Duration::msec(10)), 0u);
  EXPECT_EQ(late_fired, 0);
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::msec(10));
  sim.run();
  EXPECT_EQ(late_fired, 1);
}

TEST(SimHandleTest, CancelFromWithinAnEarlierEvent) {
  Simulator sim;
  int victim_fired = 0;
  EventHandle victim =
      sim.schedule_after(Duration::msec(5), [&] { ++victim_fired; });
  sim.schedule_after(Duration::msec(1), [&] { victim.cancel(); });
  sim.run();
  EXPECT_EQ(victim_fired, 0);
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(SimHandleTest, RescheduleFromCallbackReusesSlotsSafely) {
  Simulator sim;
  // A self-rescheduling chain: each firing frees its slot before running,
  // so the re-schedule from inside the callback reuses it immediately —
  // the prior generation's handle must stay inert throughout.
  int hops = 0;
  EventHandle last;
  std::function<void()> schedule_next = [&] {
    ++hops;
    if (hops < 50) {
      EventHandle prev = last;
      last = sim.schedule_after(Duration::msec(1),
                                [&] { schedule_next(); });
      EXPECT_FALSE(prev.pending());
      prev.cancel();
      EXPECT_TRUE(last.pending());
    }
  };
  last = sim.schedule_after(Duration::msec(1), [&] { schedule_next(); });
  sim.run();
  EXPECT_EQ(hops, 50);
  EXPECT_EQ(sim.executed_events(), 50u);
}

}  // namespace
}  // namespace canary::sim
