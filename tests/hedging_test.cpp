// Unit tests for the hedged-request strategy (clone-with-cancellation):
// race accounting stays exactly-once through every edge the design calls
// out — same-tick completion, clone-node death before launch, hedges fired
// into a retry-backoff window, budget denial — plus the admission-layer
// hedge budget and the seeded hedge chaos family.
#include <gtest/gtest.h>

#include <optional>

#include "cluster/network.hpp"
#include "harness/chaos.hpp"
#include "recovery/hedging.hpp"
#include "traffic/admission.hpp"

namespace canary::recovery {
namespace {

std::vector<cluster::NodeSpec> uniform_nodes(std::size_t n) {
  std::vector<cluster::NodeSpec> specs(n);
  for (auto& s : specs) s.cpu = cluster::CpuClass::kXeonGold6242;
  return specs;
}

faas::FunctionSpec probe() {
  faas::FunctionSpec fn;
  fn.name = "p";
  fn.runtime = faas::RuntimeImage::kPython3;
  fn.states.push_back({Duration::sec(1.0), {}});
  fn.states.push_back({Duration::sec(1.0), {}});
  fn.finalize = Duration::msec(100);
  return fn;
}

class KillSet : public faas::FailurePolicy {
 public:
  void kill(FunctionId id, int attempt, Duration offset) {
    plans_.push_back({id, attempt, offset});
  }
  std::optional<Duration> plan_kill(const faas::Invocation& inv, int attempt,
                                    Duration) override {
    for (const auto& plan : plans_) {
      if (plan.id == inv.id && plan.attempt == attempt) return plan.offset;
    }
    return std::nullopt;
  }

 private:
  struct Plan {
    FunctionId id;
    int attempt;
    Duration offset;
  };
  std::vector<Plan> plans_;
};

class HedgeTest : public ::testing::Test {
 protected:
  explicit HedgeTest(std::size_t nodes = 4)
      : cluster_(uniform_nodes(nodes)), network_(&cluster_, {}) {
    faas::PlatformConfig config;
    config.scheduler_overhead = Duration::zero();
    platform_.emplace(sim_, cluster_, network_, config, metrics_);
    platform_->set_failure_policy(&kills_);
  }

  HedgeHandler& install(HedgeConfig config) {
    handler_.emplace(*platform_, config);
    platform_->set_recovery_handler(&*handler_);
    platform_->add_observer(&*handler_);
    return *handler_;
  }

  JobId submit_probe() {
    faas::JobSpec job;
    job.name = "req";
    job.functions.push_back(probe());
    const auto id = platform_->submit_job(std::move(job));
    EXPECT_TRUE(id.ok());
    return id.value();
  }

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::NetworkModel network_;
  obs::MetricRegistry metrics_;
  KillSet kills_;
  std::optional<faas::Platform> platform_;
  std::optional<HedgeHandler> handler_;
};

// ---- race resolution edges ----------------------------------------------

// Loser and winner complete in the same sim-tick. The primary is killed
// 0.2s into launch; detection surfaces the failure at 0.5s and the retry
// restarts it cold (completion 0.5 + 2.9 = 3.4s). The hedge timer also
// fires at 0.5s, so the clone launches cold at the same instant and
// completes at the same 3.4s timestamp. Whichever completion event drains
// first wins; the loser's own completion must not double-count — the race
// resolves exactly-once either way.
TEST_F(HedgeTest, SameTickCompletionResolvesExactlyOnce) {
  HedgeConfig config;
  config.initial_delay = Duration::msec(500);
  auto& hedge = install(config);

  faas::JobSpec spec;
  spec.name = "req";
  spec.functions.push_back(probe());
  const auto submitted = platform_->submit_job(std::move(spec));
  ASSERT_TRUE(submitted.ok());
  const JobId job = submitted.value();
  kills_.kill(platform_->job_functions(job)[0], 1, Duration::msec(200));
  sim_.run();

  EXPECT_TRUE(platform_->job_completed(job));
  EXPECT_NEAR(platform_->job_completion_time(job).to_seconds(), 3.4, 0.05);
  EXPECT_EQ(metrics_.counter("hedges_fired"), 1.0);
  // Exactly one resolution: a win or a cancellation, never both or neither.
  EXPECT_EQ(metrics_.counter("hedge_wins") +
                metrics_.counter("hedges_cancelled"),
            1.0);
  EXPECT_EQ(hedge.open_races(), 0u);
  // Both copies are terminal: the winner completed, the loser discarded.
  const auto& functions = platform_->job_functions(job);
  ASSERT_EQ(functions.size(), 2u);
  for (const FunctionId id : functions) {
    EXPECT_EQ(platform_->invocation(id).phase, faas::Phase::kCompleted);
  }
  EXPECT_EQ(metrics_.counter("functions_discarded"), 1.0);
  // Both copies finished at the same timestamp: a true same-tick race.
  EXPECT_EQ(platform_->invocation(functions[0]).completion_time,
            platform_->invocation(functions[1]).completion_time);
}

// The clone's node dies while the clone is still launching. The clone is
// never retried — its failure closes the race and the primary carries the
// request at its natural pace.
class HedgeTwoNodeTest : public HedgeTest {
 protected:
  HedgeTwoNodeTest() : HedgeTest(2) {}
};

TEST_F(HedgeTwoNodeTest, CloneNodeDiesBeforeLaunchClosesRace) {
  HedgeConfig config;
  config.initial_delay = Duration::msec(500);
  auto& hedge = install(config);

  const JobId job = submit_probe();
  // The clone fires at 0.5s and launches cold until ~1.3s; kill its node
  // at 0.7s, mid-launch. (Anti-affinity puts it on the other node, but
  // resolve the node from the clone itself so the test does not assume.)
  sim_.schedule_after(Duration::msec(700), [this, job] {
    const auto& functions = platform_->job_functions(job);
    ASSERT_EQ(functions.size(), 2u) << "hedge did not fire";
    platform_->fail_node(platform_->invocation(functions[1]).node);
  });
  sim_.run();

  EXPECT_TRUE(platform_->job_completed(job));
  // The primary never noticed: completion at the unhedged 2.9s pace.
  EXPECT_NEAR(platform_->job_completion_time(job).to_seconds(), 2.9, 0.05);
  EXPECT_EQ(metrics_.counter("hedges_fired"), 1.0);
  EXPECT_EQ(metrics_.counter("hedge_wins"), 0.0);
  EXPECT_EQ(metrics_.counter("hedges_cancelled"), 1.0);
  EXPECT_EQ(hedge.open_races(), 0u);
  // A clone is never restarted: its failure produced no hedge_retry.
  EXPECT_EQ(metrics_.counter("hedge_retries"), 0.0);
  const auto& clone = platform_->invocation(platform_->job_functions(job)[1]);
  EXPECT_EQ(clone.attempt, 1);
}

// The primary fails and sits out a retry backoff; the hedge timer fires
// into that window and the clone wins the race outright. The backoff's
// pending restart must then detect the discarded primary as stale and
// drop, leaving the primary on its first (failed, superseded) attempt.
TEST_F(HedgeTest, HedgeFiredDuringRetryBackoffWindow) {
  HedgeConfig config;
  config.initial_delay = Duration::sec(1.0);
  config.retry_backoff = Duration::sec(4.0);
  auto& hedge = install(config);

  faas::JobSpec spec;
  spec.name = "req";
  spec.functions.push_back(probe());
  const auto submitted = platform_->submit_job(std::move(spec));
  ASSERT_TRUE(submitted.ok());
  const JobId job = submitted.value();
  // Primary dies 200ms into launch; detection surfaces it at ~0.5s and
  // the backoff schedules its restart for ~4.5s.
  kills_.kill(platform_->job_functions(job)[0], 1, Duration::msec(200));
  sim_.run();

  EXPECT_TRUE(platform_->job_completed(job));
  // The clone launched cold at 1.0s and finished at ~3.9s — well before
  // the primary's 4.5s restart would even begin.
  EXPECT_NEAR(platform_->job_completion_time(job).to_seconds(), 3.9, 0.1);
  EXPECT_EQ(metrics_.counter("hedges_fired"), 1.0);
  EXPECT_EQ(metrics_.counter("hedge_wins"), 1.0);
  EXPECT_EQ(metrics_.counter("hedges_cancelled"), 0.0);
  EXPECT_EQ(metrics_.counter("hedge_retries"), 1.0);
  EXPECT_EQ(hedge.open_races(), 0u);
  // The stale restart was dropped: the primary never got a second attempt.
  const auto& primary = platform_->invocation(platform_->job_functions(job)[0]);
  EXPECT_EQ(primary.attempt, 1);
}

// ---- budget gates --------------------------------------------------------

TEST_F(HedgeTest, ExhaustedGlobalBudgetDeniesClone) {
  HedgeConfig config;
  config.initial_delay = Duration::msec(500);
  config.max_outstanding = 0;
  install(config);

  const JobId job = submit_probe();
  sim_.run();

  EXPECT_TRUE(platform_->job_completed(job));
  EXPECT_EQ(metrics_.counter("hedges_fired"), 0.0);
  EXPECT_EQ(metrics_.counter("hedges_denied"), 1.0);
  EXPECT_EQ(platform_->job_functions(job).size(), 1u);
}

TEST_F(HedgeTest, BudgetHookDenialBlocksCloneWithoutCharge) {
  HedgeConfig config;
  config.initial_delay = Duration::msec(500);
  auto& hedge = install(config);
  int asked = 0;
  int released = 0;
  hedge.set_budget_hooks([&asked](JobId) { ++asked; return false; },
                         [&released](JobId) { ++released; });

  const JobId job = submit_probe();
  sim_.run();

  EXPECT_TRUE(platform_->job_completed(job));
  EXPECT_EQ(asked, 1);
  EXPECT_EQ(released, 0);  // denied grants are never released
  EXPECT_EQ(metrics_.counter("hedges_fired"), 0.0);
  EXPECT_EQ(metrics_.counter("hedges_denied"), 1.0);
}

TEST_F(HedgeTest, BudgetHookGrantIsReleasedExactlyOnce) {
  HedgeConfig config;
  config.initial_delay = Duration::msec(500);
  auto& hedge = install(config);
  int asked = 0;
  int released = 0;
  hedge.set_budget_hooks([&asked](JobId) { ++asked; return true; },
                         [&released](JobId) { ++released; });

  const JobId job = submit_probe();
  sim_.run();

  EXPECT_TRUE(platform_->job_completed(job));
  EXPECT_EQ(asked, 1);
  EXPECT_EQ(released, 1);
  EXPECT_EQ(metrics_.counter("hedges_fired"), 1.0);
}

// The admission-layer budget gate the traffic generator wires those hooks
// to: grants up to hedge_budget while the class is unsaturated, denies the
// moment a backlog exists, and recycles grants via hedge_done.
TEST(AdmissionHedgeBudgetTest, GrantsToBudgetAndDeniesUnderBacklog) {
  int submitted = 0;
  traffic::AdmissionController ctl(
      [&submitted](faas::JobSpec) { ++submitted; }, [](faas::JobSpec) {});
  traffic::AdmissionClassConfig cfg;
  cfg.max_concurrent = 2;
  cfg.queue_capacity = 4;
  cfg.hedge_budget = 2;
  const std::size_t cls = ctl.add_class(cfg);

  ASSERT_EQ(ctl.offer(cls, {}), traffic::AdmissionOutcome::kAdmitted);
  EXPECT_TRUE(ctl.try_hedge(cls));
  EXPECT_TRUE(ctl.try_hedge(cls));
  EXPECT_FALSE(ctl.try_hedge(cls));  // budget exhausted
  EXPECT_EQ(ctl.stats(cls).hedges_granted, 2u);
  EXPECT_EQ(ctl.stats(cls).hedges_denied, 1u);

  ctl.hedge_done(cls);
  EXPECT_TRUE(ctl.try_hedge(cls));  // the grant recycles

  // Saturate the class: a backlogged class denies hedges outright even
  // with budget to spare.
  ASSERT_EQ(ctl.offer(cls, {}), traffic::AdmissionOutcome::kAdmitted);
  ASSERT_EQ(ctl.offer(cls, {}), traffic::AdmissionOutcome::kQueued);
  ctl.hedge_done(cls);
  ctl.hedge_done(cls);
  EXPECT_EQ(ctl.stats(cls).hedges_active, 0u);
  EXPECT_FALSE(ctl.try_hedge(cls));
  EXPECT_EQ(ctl.stats(cls).hedges_denied, 2u);
}

// ---- seeded chaos family -------------------------------------------------

TEST(HedgeChaosTest, SameSeedSameOutcome) {
  const auto a = harness::run_hedge_chaos_scenario(50001);
  const auto b = harness::run_hedge_chaos_scenario(50001);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.hedges_fired, b.hedges_fired);
  EXPECT_EQ(a.hedge_wins, b.hedge_wins);
  EXPECT_EQ(a.hedges_cancelled, b.hedges_cancelled);
  EXPECT_EQ(a.violations, b.violations);
}

// 64-seed sweep over the hedge chaos family (racing clones, gray windows,
// mid-race node kills): the hedge exactly-once oracle — and every other
// oracle — must hold on all of them.
TEST(HedgeChaosTest, SixtyFourSeedSweepPassesAllOracles) {
  std::uint64_t fired = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const std::uint64_t seed = 50001 + i;
    const auto outcome = harness::run_hedge_chaos_scenario(seed);
    EXPECT_TRUE(outcome.violations.empty())
        << "seed " << seed << ": " << outcome.violations.front();
    EXPECT_EQ(outcome.hedges_fired,
              outcome.hedge_wins + outcome.hedges_cancelled)
        << "seed " << seed << " leaked an open race";
    fired += outcome.hedges_fired;
  }
  // The family is not vacuous: the sweep actually raced clones.
  EXPECT_GT(fired, 0u);
}

}  // namespace
}  // namespace canary::recovery
