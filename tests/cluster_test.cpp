// Unit tests for the cluster substrate: nodes, topology, network model,
// and the storage hierarchy.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/network.hpp"
#include "cluster/storage.hpp"
#include "common/rng.hpp"

namespace canary::cluster {
namespace {

// ---- node ------------------------------------------------------------

TEST(NodeTest, ReserveAndRelease) {
  Node node(NodeId{1}, NodeSpec{});
  EXPECT_TRUE(node.reserve(Bytes::gib(1)).ok());
  EXPECT_EQ(node.used_slots(), 1u);
  EXPECT_EQ(node.used_memory().count(), Bytes::gib(1).count());
  node.release(Bytes::gib(1));
  EXPECT_EQ(node.used_slots(), 0u);
  EXPECT_EQ(node.used_memory().count(), 0u);
}

TEST(NodeTest, SlotExhaustion) {
  NodeSpec spec;
  spec.container_slots = 2;
  Node node(NodeId{1}, spec);
  EXPECT_TRUE(node.reserve(Bytes::mib(1)).ok());
  EXPECT_TRUE(node.reserve(Bytes::mib(1)).ok());
  const Status third = node.reserve(Bytes::mib(1));
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.error().code, ErrorCode::kResourceExhausted);
}

TEST(NodeTest, MemoryExhaustion) {
  NodeSpec spec;
  spec.memory = Bytes::gib(4);
  Node node(NodeId{1}, spec);
  EXPECT_TRUE(node.reserve(Bytes::gib(3)).ok());
  EXPECT_FALSE(node.can_host(Bytes::gib(2)));
  EXPECT_FALSE(node.reserve(Bytes::gib(2)).ok());
  EXPECT_TRUE(node.reserve(Bytes::gib(1)).ok());
}

TEST(NodeTest, DeadNodeRefusesWork) {
  Node node(NodeId{1}, NodeSpec{});
  node.mark_failed();
  EXPECT_FALSE(node.alive());
  EXPECT_FALSE(node.can_host(Bytes::mib(1)));
  EXPECT_EQ(node.reserve(Bytes::mib(1)).error().code, ErrorCode::kUnavailable);
  EXPECT_EQ(node.free_slots(), 0u);
}

TEST(NodeTest, RestoreClearsCapacity) {
  Node node(NodeId{1}, NodeSpec{});
  ASSERT_TRUE(node.reserve(Bytes::gib(1)).ok());
  node.mark_failed();
  node.mark_restored();
  EXPECT_TRUE(node.alive());
  EXPECT_EQ(node.used_slots(), 0u);
}

TEST(NodeTest, HeterogeneousProfiles) {
  // Older hardware: slower and more failure-prone (paper §I).
  EXPECT_GT(speed_factor(CpuClass::kXeonGold6126),
            speed_factor(CpuClass::kXeonGold6240R));
  EXPECT_GT(failure_weight(CpuClass::kXeonGold6126),
            failure_weight(CpuClass::kXeonGold6240R));
  EXPECT_EQ(to_string_view(CpuClass::kXeonGold6242), "Xeon-Gold-6242");
}

// ---- cluster -----------------------------------------------------------

TEST(ClusterTest, TestbedShape) {
  const auto cluster = Cluster::testbed(16);
  EXPECT_EQ(cluster.size(), 16u);
  EXPECT_EQ(cluster.alive_count(), 16u);
  // Four nodes per rack.
  EXPECT_EQ(cluster.node(NodeId{1}).spec().rack, 0u);
  EXPECT_EQ(cluster.node(NodeId{5}).spec().rack, 1u);
  EXPECT_EQ(cluster.node(NodeId{16}).spec().rack, 3u);
  // Mixed CPU classes.
  EXPECT_NE(cluster.node(NodeId{1}).spec().cpu, cluster.node(NodeId{2}).spec().cpu);
}

TEST(ClusterTest, LeastLoadedPrefersIdleLowestId) {
  auto cluster = Cluster::testbed(4);
  ASSERT_TRUE(cluster.node(NodeId{1}).reserve(Bytes::mib(256)).ok());
  const auto pick = cluster.least_loaded(Bytes::mib(256));
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, NodeId{2});
}

TEST(ClusterTest, LeastLoadedSkipsDeadNodes) {
  auto cluster = Cluster::testbed(2);
  cluster.fail_node(NodeId{1});
  const auto pick = cluster.least_loaded(Bytes::mib(1));
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, NodeId{2});
}

TEST(ClusterTest, LeastLoadedExcluding) {
  auto cluster = Cluster::testbed(3);
  const auto pick =
      cluster.least_loaded_excluding(Bytes::mib(1), {NodeId{1}, NodeId{2}});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, NodeId{3});
  const auto none = cluster.least_loaded_excluding(
      Bytes::mib(1), {NodeId{1}, NodeId{2}, NodeId{3}});
  EXPECT_FALSE(none.has_value());
}

TEST(ClusterTest, SaturationReturnsNullopt) {
  std::vector<NodeSpec> specs(1);
  specs[0].container_slots = 1;
  Cluster cluster(std::move(specs));
  ASSERT_TRUE(cluster.node(NodeId{1}).reserve(Bytes::mib(1)).ok());
  EXPECT_FALSE(cluster.least_loaded(Bytes::mib(1)).has_value());
}

TEST(ClusterTest, AliveNodeIdsTracksFailures) {
  auto cluster = Cluster::testbed(4);
  cluster.fail_node(NodeId{2});
  const auto alive = cluster.alive_node_ids();
  EXPECT_EQ(alive.size(), 3u);
  EXPECT_EQ(cluster.alive_count(), 3u);
  cluster.restore_node(NodeId{2});
  EXPECT_EQ(cluster.alive_count(), 4u);
}

TEST(ClusterTest, WeightedRandomOnlyPicksAlive) {
  auto cluster = Cluster::testbed(4);
  cluster.fail_node(NodeId{1});
  cluster.fail_node(NodeId{2});
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const auto pick = cluster.weighted_random_alive(rng);
    ASSERT_TRUE(pick.has_value());
    EXPECT_TRUE(*pick == NodeId{3} || *pick == NodeId{4});
  }
}

TEST(ClusterTest, WeightedRandomFavoursOldHardware) {
  auto cluster = Cluster::testbed(6);  // two of each CPU class
  Rng rng(17);
  int old_hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto pick = cluster.weighted_random_alive(rng);
    ASSERT_TRUE(pick.has_value());
    if (cluster.node(*pick).spec().cpu == CpuClass::kXeonGold6126) ++old_hits;
  }
  // 6126 weight 1.45 of total (1.45+0.85+1.0)*2 => expected ~0.439.
  EXPECT_NEAR(static_cast<double>(old_hits) / n, 1.45 / 3.30, 0.02);
}

TEST(ClusterTest, WeightedRandomEmptyWhenAllDead) {
  auto cluster = Cluster::testbed(2);
  cluster.fail_node(NodeId{1});
  cluster.fail_node(NodeId{2});
  Rng rng(1);
  EXPECT_FALSE(cluster.weighted_random_alive(rng).has_value());
}

TEST(ClusterTest, RackDistance) {
  const auto cluster = Cluster::testbed(8);
  EXPECT_EQ(cluster.rack_distance(NodeId{1}, NodeId{2}), 0u);
  EXPECT_EQ(cluster.rack_distance(NodeId{1}, NodeId{5}), 1u);
}

TEST(ClusterDeathTest, UnknownNodeAborts) {
  const auto cluster = Cluster::testbed(2);
  EXPECT_DEATH((void)cluster.node(NodeId{99}), "unknown node id");
}

// ---- network ----------------------------------------------------------------

TEST(NetworkTest, LoopbackIsFree) {
  const auto cluster = Cluster::testbed(4);
  NetworkModel net(&cluster, {});
  EXPECT_EQ(net.latency(NodeId{1}, NodeId{1}), Duration::zero());
  EXPECT_EQ(net.transfer_time(NodeId{2}, NodeId{2}, Bytes::gib(1)),
            Duration::zero());
}

TEST(NetworkTest, CrossRackCostsMore) {
  const auto cluster = Cluster::testbed(8);
  NetworkModel net(&cluster, {});
  EXPECT_LT(net.latency(NodeId{1}, NodeId{2}), net.latency(NodeId{1}, NodeId{5}));
}

TEST(NetworkTest, TransferTimeScalesWithPayload) {
  const auto cluster = Cluster::testbed(4);
  NetworkModel net(&cluster, {});
  const auto small = net.transfer_time(NodeId{1}, NodeId{2}, Bytes::mib(10));
  const auto large = net.transfer_time(NodeId{1}, NodeId{2}, Bytes::mib(100));
  EXPECT_GT(large, small);
  // 110 MiB at 1100 MiB/s ~ 0.1 s plus latency.
  EXPECT_NEAR(net.transfer_time(NodeId{1}, NodeId{2}, Bytes::mib(110)).to_seconds(),
              0.1, 0.01);
}

TEST(NetworkTest, CongestionSharesBandwidthWithFloor) {
  const auto cluster = Cluster::testbed(4);
  NetworkModel net(&cluster, {});
  const auto alone = net.transfer_time(NodeId{1}, NodeId{2}, Bytes::mib(100), 1);
  const auto shared = net.transfer_time(NodeId{1}, NodeId{2}, Bytes::mib(100), 2);
  const auto mobbed = net.transfer_time(NodeId{1}, NodeId{2}, Bytes::mib(100), 100);
  EXPECT_GT(shared, alone);
  EXPECT_GT(mobbed, shared);
  // The floor caps the slowdown at 1/congestion_floor.
  EXPECT_LT(mobbed.to_seconds(), alone.to_seconds() / 0.35 + 0.01);
}

// ---- storage -----------------------------------------------------------------

TEST(StorageTest, TestbedHasExpectedTiers) {
  const auto storage = StorageHierarchy::testbed();
  EXPECT_TRUE(storage.has_tier(StorageTier::kKvStore));
  EXPECT_TRUE(storage.has_tier(StorageTier::kRamdisk));
  EXPECT_TRUE(storage.has_tier(StorageTier::kPmem));
  EXPECT_TRUE(storage.has_tier(StorageTier::kNfs));
  EXPECT_FALSE(storage.has_tier(StorageTier::kExternal));
}

TEST(StorageTest, SpillPrefersFastTiers) {
  const auto storage = StorageHierarchy::testbed();
  const auto tier = storage.spill_tier_for(Bytes::mib(100));
  ASSERT_TRUE(tier.has_value());
  EXPECT_EQ(*tier, StorageTier::kRamdisk);
}

TEST(StorageTest, SpillFallsBackForHugePayloads) {
  const auto storage = StorageHierarchy::testbed();
  const auto tier = storage.spill_tier_for(Bytes::gib(64));
  ASSERT_TRUE(tier.has_value());
  EXPECT_EQ(*tier, StorageTier::kPmem);
  const auto huge = storage.spill_tier_for(Bytes::gib(512));
  ASSERT_TRUE(huge.has_value());
  EXPECT_EQ(*huge, StorageTier::kNfs);
}

TEST(StorageTest, SharedTierSkipsNodeLocal) {
  const auto storage = StorageHierarchy::testbed();
  const auto tier = storage.shared_tier_for(Bytes::mib(100));
  ASSERT_TRUE(tier.has_value());
  // Ramdisk is node-local and volatile; pmem survives node failure.
  EXPECT_EQ(*tier, StorageTier::kPmem);
}

TEST(StorageTest, WriteTimeScalesWithPayload) {
  const auto storage = StorageHierarchy::testbed();
  const auto small = storage.write_time(StorageTier::kNfs, Bytes::mib(10));
  const auto large = storage.write_time(StorageTier::kNfs, Bytes::mib(100));
  EXPECT_GT(large, small);
  // NFS at 110 MiB/s: 110 MiB ~ 1s.
  EXPECT_NEAR(storage.write_time(StorageTier::kNfs, Bytes::mib(110)).to_seconds(),
              1.0, 0.05);
}

TEST(StorageTest, RamdiskFasterThanNfs) {
  const auto storage = StorageHierarchy::testbed();
  EXPECT_LT(storage.write_time(StorageTier::kRamdisk, Bytes::mib(100)),
            storage.write_time(StorageTier::kNfs, Bytes::mib(100)));
  EXPECT_LT(storage.read_time(StorageTier::kPmem, Bytes::mib(100)),
            storage.read_time(StorageTier::kNfs, Bytes::mib(100)));
}

TEST(StorageDeathTest, MissingTierAborts) {
  const auto storage = StorageHierarchy::testbed();
  EXPECT_DEATH((void)storage.profile(StorageTier::kExternal),
               "storage tier not configured");
}

}  // namespace
}  // namespace canary::cluster
