// Unit tests for the Checkpointing Module (Algorithm 1).
#include <gtest/gtest.h>

#include <optional>

#include "canary/checkpointing.hpp"
#include "cluster/network.hpp"

namespace canary::core {
namespace {

faas::FunctionSpec spec_with_payload(Bytes payload, std::size_t states = 4,
                                     Duration dur = Duration::sec(3.0)) {
  faas::FunctionSpec fn;
  fn.name = "fn";
  for (std::size_t i = 0; i < states; ++i) fn.states.push_back({dur, payload});
  return fn;
}

class CheckpointingTest : public ::testing::Test {
 protected:
  CheckpointingTest()
      : cluster_(cluster::Cluster::testbed(4)),
        network_(&cluster_, {}),
        storage_(cluster::StorageHierarchy::testbed()),
        store_(kv::KvConfig{}, cluster_.node_ids()) {}

  CheckpointingModule make_module(CheckpointingConfig config = {}) {
    return CheckpointingModule(sim_, cluster_, storage_, network_, store_,
                               metadata_, metrics_, config);
  }

  faas::Invocation invocation_for(const faas::FunctionSpec& spec,
                                  std::uint64_t id = 1,
                                  NodeId node = NodeId{1}) {
    faas::Invocation inv;
    inv.id = FunctionId{id};
    inv.job = JobId{1};
    inv.spec = &spec;
    inv.node = node;
    return inv;
  }

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::NetworkModel network_;
  cluster::StorageHierarchy storage_;
  kv::KvStore store_;
  MetadataStore metadata_;
  obs::MetricRegistry metrics_;
};

TEST_F(CheckpointingTest, DisabledModuleIsFree) {
  CheckpointingConfig config;
  config.enabled = false;
  auto module = make_module(config);
  const auto spec = spec_with_payload(Bytes::mib(1));
  const auto inv = invocation_for(spec);
  EXPECT_EQ(module.state_epilogue(inv, 0), Duration::zero());
  module.on_state_committed(inv, 0);
  EXPECT_EQ(store_.size(), 0u);
  const auto plan = module.restore_plan(inv.id, NodeId{1});
  EXPECT_EQ(plan.from_state, 0u);
  EXPECT_FALSE(plan.checkpoint.has_value());
}

TEST_F(CheckpointingTest, SmallPayloadWritesToKv) {
  auto module = make_module();
  const auto spec = spec_with_payload(Bytes::mib(1));
  const auto inv = invocation_for(spec);
  // KV write: 0.5ms latency + 1 MiB at 900 MiB/s.
  const auto epilogue = module.state_epilogue(inv, 0);
  EXPECT_NEAR(epilogue.to_seconds(), 0.0005 + 1.0 / 900.0, 1e-6);

  module.on_state_committed(inv, 0);
  EXPECT_EQ(store_.size(), 1u);
  EXPECT_TRUE(store_.contains(CheckpointingModule::kv_key(inv.id, 0)));
  const auto rows = metadata_.checkpoints_of(inv.id);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.front()->location, cluster::StorageTier::kKvStore);
  EXPECT_TRUE(rows.front()->flushed_to_shared);
}

TEST_F(CheckpointingTest, OversizedPayloadSpills) {
  auto module = make_module();
  const auto spec = spec_with_payload(Bytes::mib(98));  // > 4 MiB KV limit
  const auto inv = invocation_for(spec);
  // Spill: ramdisk write + KV metadata write.
  const double ramdisk = 30e-6 + 98.0 / 4000.0;
  const double kv_meta = 0.0005 + (512.0 / (1024 * 1024)) / 900.0;
  EXPECT_NEAR(module.state_epilogue(inv, 0).to_seconds(), ramdisk + kv_meta,
              1e-6);

  module.on_state_committed(inv, 0);
  const auto rows = metadata_.checkpoints_of(inv.id);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.front()->location, cluster::StorageTier::kRamdisk);
  EXPECT_FALSE(rows.front()->flushed_to_shared);  // async flush pending
  EXPECT_EQ(rows.front()->stored_on, NodeId{1});
  EXPECT_EQ(metrics_.counter("checkpoint_spills"), 1.0);
  // The KV store holds only the location record.
  const auto entry = store_.get(CheckpointingModule::kv_key(inv.id, 0));
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry.value().logical_size.count(), 512u);

  // After the async flush completes the spilled checkpoint is shared.
  sim_.run();
  EXPECT_TRUE(metadata_.checkpoints_of(inv.id).front()->flushed_to_shared);
}

TEST_F(CheckpointingTest, ZeroPayloadStillRecordsState) {
  auto module = make_module();
  const auto spec = spec_with_payload(Bytes::zero());
  const auto inv = invocation_for(spec);
  EXPECT_GT(module.state_epilogue(inv, 0), Duration::zero());
  module.on_state_committed(inv, 0);
  EXPECT_EQ(metadata_.checkpoint_count(inv.id), 1u);
}

TEST_F(CheckpointingTest, RetentionKeepsLatestN) {
  auto module = make_module();
  // Slow states (3s) => retention 3 (the paper's initial n).
  const auto spec = spec_with_payload(Bytes::mib(1), /*states=*/6);
  EXPECT_EQ(module.retention_for(spec), 3u);
  const auto inv = invocation_for(spec);
  for (std::size_t i = 0; i < 6; ++i) module.on_state_committed(inv, i);
  const auto rows = metadata_.checkpoints_of(inv.id);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows.front()->state_index, 3u);
  EXPECT_EQ(rows.back()->state_index, 5u);
  // Evicted KV keys are gone, retained ones remain.
  EXPECT_FALSE(store_.contains(CheckpointingModule::kv_key(inv.id, 0)));
  EXPECT_TRUE(store_.contains(CheckpointingModule::kv_key(inv.id, 5)));
}

TEST_F(CheckpointingTest, DynamicRetentionAdapts) {
  auto module = make_module();
  // Oversized payloads: keep fewer.
  EXPECT_EQ(module.retention_for(spec_with_payload(Bytes::mib(98))), 2u);
  // Fast states: keep more.
  EXPECT_EQ(module.retention_for(
                spec_with_payload(Bytes::kib(16), 4, Duration::msec(200))),
            5u);
  // Medium cadence: initial + 1.
  EXPECT_EQ(module.retention_for(
                spec_with_payload(Bytes::kib(16), 4, Duration::sec(1.0))),
            4u);
  // Empty spec falls back to the initial value.
  faas::FunctionSpec empty;
  EXPECT_EQ(module.retention_for(empty), 3u);
}

TEST_F(CheckpointingTest, ExplicitModeShrinksPayload) {
  CheckpointingConfig config;
  config.explicit_payload_factor = 0.25;
  auto module = make_module(config);
  const auto spec = spec_with_payload(Bytes::mib(8));  // 8 MiB nominal
  const auto inv = invocation_for(spec);
  // 8 MiB * 0.25 = 2 MiB: fits the KV limit, no spill.
  module.on_state_committed(inv, 0);
  EXPECT_EQ(metadata_.checkpoints_of(inv.id).front()->location,
            cluster::StorageTier::kKvStore);
  EXPECT_EQ(metrics_.counter("checkpoint_spills"), 0.0);
}

TEST_F(CheckpointingTest, RestorePlanUsesLatest) {
  auto module = make_module();
  const auto spec = spec_with_payload(Bytes::mib(1));
  const auto inv = invocation_for(spec);
  module.on_state_committed(inv, 0);
  module.on_state_committed(inv, 1);
  const auto plan = module.restore_plan(inv.id, NodeId{2});
  EXPECT_EQ(plan.from_state, 2u);
  EXPECT_TRUE(plan.checkpoint.has_value());
  EXPECT_GT(plan.restore_time, Duration::zero());
}

TEST_F(CheckpointingTest, RecommitReplacesRow) {
  auto module = make_module();
  const auto spec = spec_with_payload(Bytes::mib(1));
  const auto inv = invocation_for(spec);
  module.on_state_committed(inv, 0);
  module.on_state_committed(inv, 0);  // re-executed after a restore
  EXPECT_EQ(metadata_.checkpoint_count(inv.id), 1u);
}

TEST_F(CheckpointingTest, UnflushedLocalCheckpointDiesWithNode) {
  auto module = make_module();
  const auto spec = spec_with_payload(Bytes::mib(98), /*states=*/4);
  auto inv = invocation_for(spec, 1, NodeId{1});
  module.on_state_committed(inv, 0);
  sim_.run();  // flush checkpoint 0 to NFS
  module.on_state_committed(inv, 1);  // not yet flushed

  cluster_.fail_node(NodeId{1});
  const auto plan = module.restore_plan(inv.id, NodeId{2});
  // Checkpoint 1's only copy died unflushed; fall back to checkpoint 0,
  // which was flushed to shared storage.
  EXPECT_EQ(plan.from_state, 1u);
  EXPECT_TRUE(plan.checkpoint.has_value());
}

TEST_F(CheckpointingTest, AllCheckpointsLostRestartsFromScratch) {
  CheckpointingConfig config;
  config.async_flush_delay = Duration::sec(1000);  // flush never completes
  auto module = make_module(config);
  const auto spec = spec_with_payload(Bytes::mib(98));
  auto inv = invocation_for(spec, 1, NodeId{1});
  module.on_state_committed(inv, 0);
  cluster_.fail_node(NodeId{1});
  const auto plan = module.restore_plan(inv.id, NodeId{2});
  EXPECT_EQ(plan.from_state, 0u);
  EXPECT_FALSE(plan.checkpoint.has_value());
}

TEST_F(CheckpointingTest, CrossNodeRestorePaysTransfer) {
  auto module = make_module();
  const auto spec = spec_with_payload(Bytes::mib(98));
  auto inv = invocation_for(spec, 1, NodeId{1});
  module.on_state_committed(inv, 0);
  const auto local = module.restore_plan(inv.id, NodeId{1});
  const auto remote = module.restore_plan(inv.id, NodeId{2});
  EXPECT_GT(remote.restore_time, local.restore_time);
}

TEST_F(CheckpointingTest, DropFunctionClearsEverything) {
  auto module = make_module();
  const auto spec = spec_with_payload(Bytes::mib(1));
  const auto inv = invocation_for(spec);
  module.on_state_committed(inv, 0);
  module.on_state_committed(inv, 1);
  module.drop_function(inv.id);
  EXPECT_EQ(metadata_.checkpoint_count(inv.id), 0u);
  EXPECT_EQ(store_.size(), 0u);
  EXPECT_EQ(module.restore_plan(inv.id, NodeId{1}).from_state, 0u);
}

TEST_F(CheckpointingTest, EpilogueIsPure) {
  auto module = make_module();
  const auto spec = spec_with_payload(Bytes::mib(2));
  const auto inv = invocation_for(spec);
  const auto first = module.state_epilogue(inv, 1);
  module.on_state_committed(inv, 1);
  EXPECT_EQ(module.state_epilogue(inv, 1), first);
}

}  // namespace
}  // namespace canary::core
