// Tests for platform feature extensions: function timeouts, container
// reuse (warm pool), and checkpoint compression.
#include <gtest/gtest.h>

#include <optional>

#include "canary/checkpointing.hpp"
#include "cluster/network.hpp"
#include "faas/platform.hpp"
#include "faas/retry.hpp"

namespace canary {
namespace {

std::vector<cluster::NodeSpec> uniform_nodes(std::size_t n) {
  std::vector<cluster::NodeSpec> specs(n);
  for (auto& s : specs) s.cpu = cluster::CpuClass::kXeonGold6242;
  return specs;
}

faas::FunctionSpec simple_fn(std::size_t states = 2,
                             Duration dur = Duration::sec(1.0)) {
  faas::FunctionSpec fn;
  fn.name = "f";
  fn.states.assign(states, {dur, Bytes::zero()});
  fn.finalize = Duration::msec(100);
  return fn;
}

class FeatureTest : public ::testing::Test {
 protected:
  FeatureTest() : cluster_(uniform_nodes(2)), network_(&cluster_, {}) {}

  faas::Platform& make_platform(faas::PlatformConfig config = {}) {
    config.scheduler_overhead = Duration::zero();
    platform_.emplace(sim_, cluster_, network_, config, metrics_);
    retry_.emplace(*platform_);
    platform_->set_recovery_handler(&*retry_);
    return *platform_;
  }

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::NetworkModel network_;
  obs::MetricRegistry metrics_;
  std::optional<faas::Platform> platform_;
  std::optional<faas::RetryHandler> retry_;
};

// ---- timeouts ----------------------------------------------------------

TEST_F(FeatureTest, TimeoutKillsLongAttempt) {
  faas::PlatformConfig config;
  config.limits.function_timeout = Duration::sec(1.5);
  auto& p = make_platform(config);
  // 2x1s states + 0.8s cold start: the first attempt blows the 1.5s
  // timeout; retries keep timing out => the retry budget must stop it.
  retry_.emplace(p, faas::RetryHandler::Config{2});
  p.set_recovery_handler(&*retry_);
  faas::JobSpec job;
  job.functions.push_back(simple_fn());
  const auto id = p.submit_job(job);
  ASSERT_TRUE(id.ok());
  sim_.run();
  EXPECT_GE(metrics_.counter("timeouts"), 1.0);
  EXPECT_FALSE(p.job_completed(id.value()));
  EXPECT_EQ(retry_->giveups(), 1);
}

TEST_F(FeatureTest, GenerousTimeoutNeverFires) {
  faas::PlatformConfig config;
  config.limits.function_timeout = Duration::sec(100.0);
  auto& p = make_platform(config);
  faas::JobSpec job;
  job.functions.push_back(simple_fn());
  const auto id = p.submit_job(job);
  ASSERT_TRUE(id.ok());
  sim_.run();
  EXPECT_EQ(metrics_.counter("timeouts"), 0.0);
  EXPECT_TRUE(p.job_completed(id.value()));
}

TEST_F(FeatureTest, TimeoutDisabledByDefault) {
  auto& p = make_platform();
  faas::JobSpec job;
  job.functions.push_back(simple_fn(8, Duration::sec(100.0)));
  const auto id = p.submit_job(job);
  ASSERT_TRUE(id.ok());
  sim_.run();
  EXPECT_TRUE(p.job_completed(id.value()));
  EXPECT_EQ(metrics_.counter("timeouts"), 0.0);
}

// ---- container reuse -----------------------------------------------------

TEST_F(FeatureTest, ReuseSkipsColdStartForSecondWave) {
  faas::PlatformConfig config;
  config.reuse_containers = true;
  auto& p = make_platform(config);

  faas::JobSpec first;
  first.functions.push_back(simple_fn(1));
  const auto a = p.submit_job(first);
  ASSERT_TRUE(a.ok());

  // Second job arrives 3s in — first completes at ~1.9s, so its pooled
  // container is idle and inside the reuse window.
  std::optional<JobId> b;
  sim_.schedule_after(Duration::sec(3.0), [&] {
    EXPECT_EQ(p.warm_container_count(faas::RuntimeImage::kPython3), 1u);
    faas::JobSpec second;
    second.functions.push_back(simple_fn(1));
    auto submitted = p.submit_job(second);
    ASSERT_TRUE(submitted.ok());
    b = submitted.value();
  });
  sim_.run();

  ASSERT_TRUE(b.has_value());
  ASSERT_TRUE(p.job_completed(a.value()));
  ASSERT_TRUE(p.job_completed(*b));
  EXPECT_EQ(metrics_.counter("pool_reuses"), 1.0);
  EXPECT_EQ(metrics_.counter("cold_starts"), 1.0);  // only the first wave
  EXPECT_EQ(metrics_.counter("containers_pooled"), 2.0);
  // Second function: warm dispatch (8ms) + 1s state + 0.1s finalize,
  // starting from its 3s submission.
  EXPECT_EQ(p.job_completion_time(*b).count_usec(), 4'108'000);
}

TEST_F(FeatureTest, PooledContainerExpiresAfterIdleTimeout) {
  faas::PlatformConfig config;
  config.reuse_containers = true;
  config.warm_pool_idle_timeout = Duration::sec(5.0);
  auto& p = make_platform(config);
  faas::JobSpec job;
  job.functions.push_back(simple_fn(1));
  const auto id = p.submit_job(job);
  ASSERT_TRUE(id.ok());
  sim_.run();
  ASSERT_TRUE(p.job_completed(id.value()));
  // The idle timer fired during run(): the pool container is gone and its
  // node capacity released.
  EXPECT_EQ(p.warm_container_count(faas::RuntimeImage::kPython3), 0u);
  EXPECT_EQ(cluster_.node(NodeId{1}).used_slots(), 0u);
  EXPECT_EQ(cluster_.node(NodeId{2}).used_slots(), 0u);
}

TEST_F(FeatureTest, ReuseBillingPausesWhileIdle) {
  faas::PlatformConfig config;
  config.reuse_containers = true;
  config.warm_pool_idle_timeout = Duration::sec(5.0);
  auto& p = make_platform(config);
  faas::JobSpec job;
  job.functions.push_back(simple_fn(1));
  const auto id = p.submit_job(job);
  ASSERT_TRUE(id.ok());
  sim_.run();  // completes at ~1.9s; pool expiry at ~6.9s
  p.finalize_usage();
  ASSERT_TRUE(p.job_completed(id.value()));
  // Billed interval covers only creation..completion, not the idle tail.
  double billed = 0.0;
  for (const auto& rec : p.usage().records()) billed += rec.duration().to_seconds();
  EXPECT_NEAR(billed, 1.9, 0.05);
}

TEST_F(FeatureTest, ReuseOffTearsDownImmediately) {
  auto& p = make_platform();
  faas::JobSpec job;
  job.functions.push_back(simple_fn(1));
  const auto id = p.submit_job(job);
  ASSERT_TRUE(id.ok());
  sim_.run();
  EXPECT_TRUE(p.job_completed(id.value()));
  EXPECT_EQ(metrics_.counter("containers_pooled"), 0.0);
  EXPECT_EQ(p.warm_container_count(faas::RuntimeImage::kPython3), 0u);
}

// ---- checkpoint compression -------------------------------------------------

class CompressionTest : public ::testing::Test {
 protected:
  CompressionTest()
      : cluster_(cluster::Cluster::testbed(4)),
        network_(&cluster_, {}),
        storage_(cluster::StorageHierarchy::testbed()),
        store_(kv::KvConfig{}, cluster_.node_ids()) {}

  core::CheckpointingModule make_module(core::CheckpointingConfig config) {
    return core::CheckpointingModule(sim_, cluster_, storage_, network_,
                                     store_, metadata_, metrics_, config);
  }

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::NetworkModel network_;
  cluster::StorageHierarchy storage_;
  kv::KvStore store_;
  core::MetadataStore metadata_;
  obs::MetricRegistry metrics_;
};

TEST_F(CompressionTest, CompressionAvoidsSpill) {
  // 8 MiB nominal payload, 4 MiB KV limit: uncompressed spills,
  // compressed (8/2.8 = 2.9 MiB) fits the KV store.
  faas::FunctionSpec spec;
  spec.states.assign(2, {Duration::sec(2.0), Bytes::mib(8)});
  faas::Invocation inv;
  inv.id = FunctionId{1};
  inv.spec = &spec;
  inv.node = NodeId{1};

  core::CheckpointingConfig off;
  auto plain = make_module(off);
  plain.on_state_committed(inv, 0);
  EXPECT_EQ(metadata_.checkpoints_of(inv.id).front()->location,
            cluster::StorageTier::kRamdisk);
  plain.drop_function(inv.id);

  core::CheckpointingConfig on;
  on.compress = true;
  auto compressed = make_module(on);
  compressed.on_state_committed(inv, 0);
  EXPECT_EQ(metadata_.checkpoints_of(inv.id).front()->location,
            cluster::StorageTier::kKvStore);
  EXPECT_LT(metadata_.checkpoints_of(inv.id).front()->payload, Bytes::mib(3));
}

TEST_F(CompressionTest, EpilogueIncludesCompressionCpu) {
  faas::FunctionSpec spec;
  spec.states.assign(1, {Duration::sec(1.0), Bytes::mib(100)});
  faas::Invocation inv;
  inv.id = FunctionId{2};
  inv.spec = &spec;
  inv.node = NodeId{1};

  core::CheckpointingConfig on;
  on.compress = true;
  auto module = make_module(on);
  core::CheckpointingConfig off;
  auto plain = make_module(off);
  // Compressed epilogue: 100 MiB at 400 MiB/s CPU (0.25s) + writing
  // ~35.7 MiB instead of 100 MiB. Both effects must show.
  const double with = module.state_epilogue(inv, 0).to_seconds();
  const double without = plain.state_epilogue(inv, 0).to_seconds();
  EXPECT_GT(with, 0.25);          // contains the CPU cost
  EXPECT_LT(with, without + 0.3);  // bounded: write savings offset CPU
}

TEST_F(CompressionTest, RestoreIncludesDecompression) {
  faas::FunctionSpec spec;
  spec.states.assign(1, {Duration::sec(1.0), Bytes::mib(2)});
  faas::Invocation inv;
  inv.id = FunctionId{3};
  inv.spec = &spec;
  inv.node = NodeId{1};

  core::CheckpointingConfig on;
  on.compress = true;
  auto module = make_module(on);
  module.on_state_committed(inv, 0);
  const auto plan = module.restore_plan(inv.id, NodeId{2});
  ASSERT_TRUE(plan.checkpoint.has_value());
  // Restore = KV read of ~0.73 MiB + decompression of 2 MiB at 1200 MiB/s.
  EXPECT_GT(plan.restore_time.to_seconds(), 2.0 / 1200.0);
}

}  // namespace
}  // namespace canary
