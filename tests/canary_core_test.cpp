// End-to-end tests for the Core Module: validated submission, queueing,
// checkpoint-based recovery onto replicated runtimes, and cold fallback.
#include <gtest/gtest.h>

#include <optional>

#include "canary/core.hpp"
#include "cluster/network.hpp"
#include "failure/injector.hpp"

namespace canary::core {
namespace {

std::vector<cluster::NodeSpec> uniform_nodes(std::size_t n) {
  std::vector<cluster::NodeSpec> specs(n);
  for (auto& s : specs) s.cpu = cluster::CpuClass::kXeonGold6242;
  return specs;
}

faas::FunctionSpec stateful_function(std::size_t states = 4) {
  faas::FunctionSpec fn;
  fn.name = "stateful";
  fn.runtime = faas::RuntimeImage::kPython3;
  for (std::size_t i = 0; i < states; ++i) {
    fn.states.push_back({Duration::sec(1.0), Bytes::kib(64)});
  }
  fn.finalize = Duration::msec(200);
  return fn;
}

/// Kills attempt 1 of function `victim` at a fixed offset.
class KillOne : public faas::FailurePolicy {
 public:
  KillOne(FunctionId victim, Duration offset)
      : victim_(victim), offset_(offset) {}
  std::optional<Duration> plan_kill(const faas::Invocation& inv, int attempt,
                                    Duration) override {
    if (inv.id == victim_ && attempt == 1) return offset_;
    return std::nullopt;
  }

 private:
  FunctionId victim_;
  Duration offset_;
};

class CoreModuleTest : public ::testing::Test {
 protected:
  CoreModuleTest()
      : cluster_(uniform_nodes(4)),
        network_(&cluster_, {}),
        storage_(cluster::StorageHierarchy::testbed()),
        store_(kv::KvConfig{}, cluster_.node_ids()) {}

  static faas::PlatformConfig make_config() {
    faas::PlatformConfig config;
    config.scheduler_overhead = Duration::zero();
    return config;
  }

  faas::Platform& platform() {
    if (!platform_) {
      platform_.emplace(sim_, cluster_, network_, make_config(), metrics_);
    }
    return *platform_;
  }

  CoreModule& make_core(CanaryConfig config = {}) {
    core_.emplace(platform(), store_, storage_, config);
    core_->install();
    return *core_;
  }

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::NetworkModel network_;
  cluster::StorageHierarchy storage_;
  kv::KvStore store_;
  obs::MetricRegistry metrics_;
  std::optional<faas::Platform> platform_;
  std::optional<CoreModule> core_;
};

TEST_F(CoreModuleTest, CleanRunCompletesWithCheckpoints) {
  auto& core = make_core();
  faas::JobSpec job;
  job.functions.push_back(stateful_function());
  const auto id = core.submit_job(job);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(id.value().valid());
  sim_.run();
  EXPECT_TRUE(platform().job_completed(id.value()));
  // Checkpoints were written during execution and dropped at completion.
  EXPECT_GE(metrics_.counter("checkpoints_written"), 4.0);
  EXPECT_EQ(store_.size(), 0u);
  EXPECT_EQ(core.in_flight_functions(), 0u);
  // A replica was provisioned for the active runtime (DR floor of 1).
  EXPECT_GE(metrics_.counter("replicas_launched"), 1.0);
}

TEST_F(CoreModuleTest, RejectsOversizedRequests) {
  auto& core = make_core();
  faas::JobSpec job;
  auto fn = stateful_function();
  fn.memory = Bytes::gib(100);
  job.functions.push_back(fn);
  const auto id = core.submit_job(job);
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(metrics_.counter("requests_rejected"), 1.0);
}

TEST_F(CoreModuleTest, QueuesWhenConcurrencyWouldOverflow) {
  faas::PlatformConfig config = make_config();
  config.limits.max_concurrent_invocations = 3;
  platform_.emplace(sim_, cluster_, network_, config, metrics_);
  auto& core = make_core();

  faas::JobSpec job1;
  for (int i = 0; i < 3; ++i) job1.functions.push_back(stateful_function(1));
  faas::JobSpec job2;
  job2.functions.push_back(stateful_function(1));

  const auto first = core.submit_job(job1);
  ASSERT_TRUE(first.ok());
  const auto second = core.submit_job(job2);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().valid());  // queued, not submitted
  EXPECT_EQ(core.queued_jobs(), 1u);
  sim_.run();
  // The queued job drained once capacity freed and completed.
  EXPECT_EQ(core.queued_jobs(), 0u);
  EXPECT_TRUE(platform().all_jobs_completed());
  EXPECT_EQ(metrics_.counter("requests_queued"), 1.0);
}

TEST_F(CoreModuleTest, RecoversOntoReplicaFromLatestCheckpoint) {
  auto& core = make_core();
  faas::JobSpec job;
  job.functions.push_back(stateful_function());
  const auto id = core.submit_job(job);
  ASSERT_TRUE(id.ok());
  const FunctionId victim = platform().job_functions(id.value()).front();
  // Kill 3.0s in: launch+init 0.8s, ~2.2s into execution => state 0 and 1
  // committed (with epilogues), state 2 in flight.
  KillOne policy(victim, Duration::sec(3.0));
  platform().set_failure_policy(&policy);
  sim_.run();

  EXPECT_TRUE(platform().job_completed(id.value()));
  const auto& inv = platform().invocation(victim);
  EXPECT_EQ(inv.failures, 1);
  EXPECT_EQ(metrics_.counter("replica_recoveries"), 1.0);
  EXPECT_EQ(metrics_.counter("warm_starts"), 1.0);
  // Recovery was fast: detection (0.3s) + migration + restore + the
  // in-flight state redo; far below a cold restart-from-scratch.
  EXPECT_LT(inv.recovery_time.to_seconds(), 2.5);
  EXPECT_GT(inv.recovery_time.to_seconds(), 0.3);
  // The function resumed from the checkpoint, not from scratch: lost work
  // is only the in-flight state fraction.
  EXPECT_LT(inv.lost_work.to_seconds(), 1.01);
}

TEST_F(CoreModuleTest, FallsBackColdWhenNoReplica) {
  CanaryConfig config;
  config.replication.enabled = false;  // checkpoint-only Canary
  auto& core = make_core(config);
  faas::JobSpec job;
  job.functions.push_back(stateful_function());
  const auto id = core.submit_job(job);
  ASSERT_TRUE(id.ok());
  const FunctionId victim = platform().job_functions(id.value()).front();
  KillOne policy(victim, Duration::sec(3.0));
  platform().set_failure_policy(&policy);
  sim_.run();

  EXPECT_TRUE(platform().job_completed(id.value()));
  EXPECT_EQ(metrics_.counter("cold_fallback_recoveries"), 1.0);
  EXPECT_EQ(metrics_.counter("replica_recoveries"), 0.0);
  const auto& inv = platform().invocation(victim);
  // Pays the cold start again but keeps checkpointed progress.
  EXPECT_GT(inv.recovery_time.to_seconds(), 1.0);
  EXPECT_LT(inv.lost_work.to_seconds(), 1.01);
}

TEST_F(CoreModuleTest, MetadataTablesTrackExecution) {
  auto& core = make_core();
  faas::JobSpec job;
  job.name = "tracked";
  job.functions.push_back(stateful_function());
  const auto id = core.submit_job(job);
  ASSERT_TRUE(id.ok());
  sim_.run();

  const auto* job_row = core.metadata().job(id.value());
  ASSERT_NE(job_row, nullptr);
  EXPECT_EQ(job_row->name, "tracked");
  EXPECT_EQ(job_row->function_count, 1u);

  const auto fns = core.metadata().functions_of_job(id.value());
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_TRUE(fns.front()->completed);
  EXPECT_EQ(fns.front()->attempts, 1);
  EXPECT_TRUE(fns.front()->worker.valid());

  EXPECT_EQ(core.metadata().worker_count(), 4u);
}

TEST_F(CoreModuleTest, NodeFailureRecoveryUsesSurvivingCheckpoints) {
  auto& core = make_core();
  faas::JobSpec job;
  job.functions.push_back(stateful_function());
  const auto id = core.submit_job(job);
  ASSERT_TRUE(id.ok());
  const FunctionId victim = platform().job_functions(id.value()).front();

  sim_.schedule_after(Duration::sec(3.0), [&] {
    const NodeId host = platform().invocation(victim).node;
    platform().fail_node(host);
    store_.fail_node(host);
  });
  sim_.run();
  EXPECT_TRUE(platform().job_completed(id.value()));
  const auto& inv = platform().invocation(victim);
  EXPECT_GE(inv.failures, 1);
  // Small checkpoints live in the replicated KV store, so recovery still
  // resumed from a checkpoint (lost work bounded by one state).
  EXPECT_LT(inv.lost_work.to_seconds(), 1.01);
}

TEST_F(CoreModuleTest, InstallTwiceAborts) {
  auto& core = make_core();
  EXPECT_DEATH(core.install(), "installed twice");
}

}  // namespace
}  // namespace canary::core
