// Tests for the observability layer: span recorder semantics, histogram
// percentile math, deterministic JSON exporters, and byte-identical
// run reports across identical seeded runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/scenario.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/metric_registry.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "recovery/strategies.hpp"
#include "workloads/workloads.hpp"

namespace canary {
namespace {

using obs::Histogram;
using obs::JsonWriter;
using obs::MetricRegistry;
using obs::RunReport;
using obs::SpanKind;
using obs::SpanLabels;
using obs::SpanRecorder;

// ---------------------------------------------------------------------------
// SpanRecorder
// ---------------------------------------------------------------------------

TEST(SpanRecorderTest, OpenCloseRecordsDuration) {
  SpanRecorder rec;
  auto h = rec.open(SpanKind::kExec, "exec", TimePoint::from_usec(100));
  EXPECT_TRUE(h.valid());
  EXPECT_EQ(rec.open_count(), 1u);
  rec.close(h, TimePoint::from_usec(350));
  ASSERT_EQ(rec.size(), 1u);
  const auto& span = rec.spans()[0];
  EXPECT_EQ(span.kind, SpanKind::kExec);
  EXPECT_FALSE(span.open);
  EXPECT_EQ(span.duration(), Duration::usec(250));
  EXPECT_EQ(rec.open_count(), 0u);
}

TEST(SpanRecorderTest, NestedSpansCloseIndependently) {
  // launch ⊃ init ⊃ exec: closing out of order must not corrupt siblings.
  SpanRecorder rec;
  auto launch = rec.open(SpanKind::kLaunch, "launch", TimePoint::from_usec(0));
  auto init = rec.open(SpanKind::kInit, "init", TimePoint::from_usec(10));
  auto exec = rec.open(SpanKind::kExec, "exec", TimePoint::from_usec(40));
  EXPECT_EQ(rec.open_count(), 3u);
  rec.close(init, TimePoint::from_usec(40));
  rec.close(exec, TimePoint::from_usec(90));
  rec.close(launch, TimePoint::from_usec(95));
  EXPECT_EQ(rec.open_count(), 0u);
  EXPECT_EQ(rec.total_duration(SpanKind::kInit), Duration::usec(30));
  EXPECT_EQ(rec.total_duration(SpanKind::kExec), Duration::usec(50));
  EXPECT_EQ(rec.total_duration(SpanKind::kLaunch), Duration::usec(95));
  // Nesting invariant: every child interval lies inside its parent.
  const auto& spans = rec.spans();
  EXPECT_GE(spans[1].start, spans[0].start);
  EXPECT_LE(spans[2].end, spans[0].end);
}

TEST(SpanRecorderTest, DoubleCloseAndInertHandlesAreNoOps) {
  SpanRecorder rec;
  auto h = rec.open(SpanKind::kExec, "exec", TimePoint::from_usec(0));
  rec.close(h, TimePoint::from_usec(10));
  rec.close(h, TimePoint::from_usec(999));  // second close must not move `end`
  EXPECT_EQ(rec.spans()[0].end, TimePoint::from_usec(10));

  obs::SpanHandle inert;
  EXPECT_FALSE(inert.valid());
  rec.close(inert, TimePoint::from_usec(50));  // must not crash or record
  EXPECT_EQ(rec.size(), 1u);
}

TEST(SpanRecorderTest, CapacityCapCountsDrops) {
  SpanRecorder rec(2);
  (void)rec.open(SpanKind::kExec, "a", TimePoint::from_usec(0));
  rec.instant(SpanKind::kFailure, "b", TimePoint::from_usec(1));
  auto overflow = rec.open(SpanKind::kExec, "c", TimePoint::from_usec(2));
  rec.record(SpanKind::kRecovery, "d", TimePoint::from_usec(3), TimePoint::from_usec(4));
  EXPECT_FALSE(overflow.valid());
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.dropped(), 2u);
}

TEST(SpanRecorderTest, CloseAllOpenAndRetroactiveRecord) {
  SpanRecorder rec;
  (void)rec.open(SpanKind::kExec, "left-open", TimePoint::from_usec(5));
  rec.record(SpanKind::kRecovery, "window", TimePoint::from_usec(10),
             TimePoint::from_usec(70), SpanLabels{JobId{1}, FunctionId{2},
                                             ContainerId{3}, NodeId{4}, 2});
  rec.close_all_open(TimePoint::from_usec(100));
  EXPECT_EQ(rec.open_count(), 0u);
  EXPECT_EQ(rec.spans()[0].end, TimePoint::from_usec(100));
  const auto& window = rec.spans()[1];
  EXPECT_EQ(window.duration(), Duration::usec(60));
  EXPECT_EQ(window.labels.attempt, 2);
  EXPECT_EQ(rec.count_of(SpanKind::kRecovery), 1u);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, ExactStatsAndEdgePercentiles) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.percentile(50.0), 0.0);
  for (double v : {4.0, 1.0, 3.0, 2.0, 5.0}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 5.0);
}

TEST(HistogramTest, PercentileWithinRelativeErrorBound) {
  // Log-linear bucketing with 64 sub-buckets per octave bounds the
  // relative quantile error at ~1/64; check against the exact empirical
  // percentiles of a deterministic sample set.
  std::mt19937_64 rng(1234);
  std::uniform_real_distribution<double> dist(0.001, 90.0);
  std::vector<double> values;
  Histogram h;
  for (int i = 0; i < 20000; ++i) {
    const double v = dist(rng);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {50.0, 95.0, 99.0}) {
    const auto rank = static_cast<std::size_t>(
        std::min<double>(values.size() - 1, p / 100.0 * values.size()));
    const double exact = values[rank];
    EXPECT_NEAR(h.percentile(p), exact, exact * 0.02)
        << "p" << p << " outside the bucketing error bound";
  }
}

TEST(HistogramTest, MergeMatchesConcatenatedStream) {
  Histogram a, b, both;
  for (int i = 1; i <= 100; ++i) {
    const double v = 0.37 * i;
    (i % 2 == 0 ? a : b).record(v);
    both.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_DOUBLE_EQ(a.sum(), both.sum());
  EXPECT_DOUBLE_EQ(a.min(), both.min());
  EXPECT_DOUBLE_EQ(a.max(), both.max());
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), both.percentile(p));
  }
}

TEST(HistogramTest, NegativeValuesClampButCount) {
  Histogram h;
  h.record(-2.5);
  h.record(1.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -2.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), -2.5);
}

TEST(HistogramTest, PercentileEdgeTable) {
  // Pin the nearest-rank contract (rank = ceil(p/100 * n), 1-based) on a
  // table of edge cases. Values are well separated so each lands in its
  // own bucket; the 2% bound is the log-linear bucketing error, not
  // slack in the rank math — a rank off by one selects a neighbouring
  // value, 2x away, and fails loudly.
  struct Case {
    std::size_t n;       // record 1.0, 2.0, ..., n
    double p;
    double expected;     // value at the nearest rank
  };
  const Case kCases[] = {
      {1, 50.0, 1.0},      // a single sample is every percentile
      {1, 99.9, 1.0},
      {2, 50.0, 1.0},      // ceil(1.0) == 1: the lower sample
      {2, 50.1, 2.0},      // just past the boundary: the upper one
      {4, 25.0, 1.0},      // exact boundary ranks must not round up...
      {4, 50.0, 2.0},
      {4, 75.0, 3.0},
      {4, 76.0, 4.0},      // ...but anything past them must
      {10, 10.0, 1.0},
      {10, 90.0, 9.0},
      {10, 91.0, 10.0},
      // FP-rank guard: 0.975 * 40 is 39.000000000000007 in binary;
      // without the guard ceil() inflates the rank to 40 and p97.5
      // reports the max instead of the 39th sample.
      {40, 97.5, 39.0},
      {40, 2.5, 1.0},
      {1000, 99.9, 999.0},
  };
  for (const Case& c : kCases) {
    Histogram h;
    for (std::size_t i = 1; i <= c.n; ++i) h.record(static_cast<double>(i));
    EXPECT_NEAR(h.percentile(c.p), c.expected, c.expected * 0.02)
        << "n=" << c.n << " p=" << c.p;
    // quantile() is the same query on a [0, 1] axis.
    EXPECT_DOUBLE_EQ(h.quantile(c.p / 100.0), h.percentile(c.p))
        << "quantile(q) != percentile(100q) at n=" << c.n << " p=" << c.p;
  }
}

// ---------------------------------------------------------------------------
// Histogram exemplars
// ---------------------------------------------------------------------------

TEST(HistogramExemplarTest, DisabledByDefaultAndRetainsNothing) {
  Histogram h;
  EXPECT_FALSE(h.exemplars_enabled());
  for (int i = 1; i <= 50; ++i) {
    h.record_traced(static_cast<double>(i), 1000 + i, i);
  }
  EXPECT_EQ(h.exemplar_count(), 0u);
  EXPECT_TRUE(h.exemplars_above(0.0).empty());
  // record_traced must still behave exactly like record().
  EXPECT_EQ(h.count(), 50u);
  EXPECT_DOUBLE_EQ(h.max(), 50.0);
}

TEST(HistogramExemplarTest, RetainsOnlyTheTailAboveTheQuantileFloor) {
  obs::ExemplarConfig config;
  config.enabled = true;
  config.per_bucket = 2;
  config.min_quantile = 0.5;
  Histogram h;
  h.enable_exemplars(config);
  for (int i = 1; i <= 100; ++i) {
    h.record_traced(static_cast<double>(i), 1000 + i, i);
  }
  const auto retained = h.exemplars_above(0.0);
  ASSERT_FALSE(retained.empty());
  // Retention floor: nothing below the median may survive the prune.
  const double median = h.quantile(0.5);
  for (const obs::Exemplar& e : retained) {
    EXPECT_GE(e.value, median * 0.98)
        << "exemplar " << e.value << " below the retention floor";
    // The exemplar carries the ids it was recorded with.
    EXPECT_EQ(e.trace, 1000 + static_cast<std::uint64_t>(e.value));
    EXPECT_EQ(e.ref, static_cast<std::uint64_t>(e.value));
  }
  // The deepest tail is always retained (reservoir of the max bucket).
  EXPECT_DOUBLE_EQ(retained.front().value, 100.0);
  // Sorted by value descending for deterministic iteration.
  for (std::size_t i = 1; i < retained.size(); ++i) {
    EXPECT_GE(retained[i - 1].value, retained[i].value);
  }
  // exemplars_above(min) filters.
  for (const obs::Exemplar& e : h.exemplars_above(90.0)) {
    EXPECT_GE(e.value, 90.0);
  }
}

TEST(HistogramExemplarTest, SeededReservoirIsDeterministic) {
  auto run = [](std::uint64_t seed) {
    obs::ExemplarConfig config;
    config.enabled = true;
    config.per_bucket = 3;
    config.seed = seed;
    Histogram h;
    h.enable_exemplars(config);
    // Many samples per bucket so the reservoir actually replaces.
    for (int i = 0; i < 2000; ++i) {
      const double v = 1.0 + (i % 17) * 0.5;
      h.record_traced(v, static_cast<std::uint64_t>(i), 7000 + i);
    }
    return h.exemplars_above(0.0);
  };
  const auto a = run(42);
  const auto b = run(42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].value, b[i].value);
    EXPECT_EQ(a[i].trace, b[i].trace);
    EXPECT_EQ(a[i].ref, b[i].ref);
  }
}

TEST(HistogramExemplarTest, MergeKeepsLargestPerBucketAndStaysBounded) {
  obs::ExemplarConfig config;
  config.enabled = true;
  config.per_bucket = 2;
  config.min_quantile = 0.0;  // retain everywhere: the bound is per bucket
  Histogram a, b;
  a.enable_exemplars(config);
  b.enable_exemplars(config);
  // Same bucket (same value), disjoint trace ids.
  for (int i = 0; i < 8; ++i) {
    a.record_traced(5.0, 100 + i, 100 + i);
    b.record_traced(5.0, 200 + i, 200 + i);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), 16u);
  const auto retained = a.exemplars_above(0.0);
  // The shared bucket may keep at most per_bucket exemplars.
  EXPECT_LE(retained.size(), config.per_bucket);
  // Merging into an exemplar-less histogram adopts the other's config.
  Histogram c;
  c.merge(a);
  EXPECT_TRUE(c.exemplars_enabled());
  EXPECT_EQ(c.exemplars_above(0.0).size(), retained.size());
}

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

TEST(MetricRegistryTest, MergeAddsCountersAndMergesHistograms) {
  MetricRegistry a, b;
  a.count("failures", 3);
  b.count("failures", 2);
  b.count("recoveries");
  a.set_gauge("replicas", 1.0);
  b.set_gauge("replicas", 4.0);
  a.sample("lat", 1.0);
  b.sample("lat", 3.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.counter("failures"), 5.0);
  EXPECT_DOUBLE_EQ(a.counter("recoveries"), 1.0);
  EXPECT_DOUBLE_EQ(a.counter("never_touched"), 0.0);
  EXPECT_DOUBLE_EQ(a.gauge("replicas"), 4.0);  // last writer wins
  EXPECT_EQ(a.histogram("lat").count(), 2u);
  EXPECT_DOUBLE_EQ(a.histogram("lat").mean(), 2.0);
  EXPECT_TRUE(a.histogram("missing").empty());
}

// ---------------------------------------------------------------------------
// JSON writer + exporters
// ---------------------------------------------------------------------------

TEST(JsonWriterTest, EscapesAndFormatsDeterministically) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(JsonWriter::format_double(42.0), "42");
  EXPECT_EQ(JsonWriter::format_double(0.5), "0.5");
  EXPECT_EQ(JsonWriter::format_double(std::nan("")), "null");

  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_object()
      .field("name", "x")
      .field("n", 3)
      .key("arr")
      .begin_array()
      .value(1.5)
      .value(true)
      .end_array()
      .end_object();
  EXPECT_EQ(os.str(), R"({"name":"x","n":3,"arr":[1.5,true]})");
}

TEST(RunReportTest, JsonRoundTripContainsEveryField) {
  RunReport report;
  report.name = "unit";
  report.set_param("strategy", "canary-dr");
  report.set_param("error_rate", 0.25);
  report.set_scalar("makespan_s_mean", 12.5);
  report.metrics.count("failures", 7);
  report.metrics.sample("lat", 2.0);
  report.series.push_back({"sweep", {"x", "y"}, {{"1", "2"}, {"3", "4"}}});
  report.add_claim("recovers faster", 81.0, "%");

  const std::string json = report.to_json();
  // Structural sanity: braces balance and all sections are present.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  for (const char* needle :
       {"\"schema\": \"canary.run_report/v2\"", "\"name\": \"unit\"",
        "\"strategy\": \"canary-dr\"", "\"error_rate\": \"0.25\"",
        "\"makespan_s_mean\": 12.5", "\"failures\": 7", "\"lat\"",
        "\"p50\"", "\"sweep\"", "\"recovers faster\"", "\"measured\": 81"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << "missing " << needle;
  }
  // Serialisation is a pure function of the report's contents.
  EXPECT_EQ(json, report.to_json());
}

TEST(ChromeTraceTest, EmitsCompleteAndInstantEvents) {
  SpanRecorder rec;
  auto h = rec.open(SpanKind::kExec, "exec", TimePoint::from_usec(100),
                    SpanLabels{JobId{1}, FunctionId{2}, ContainerId{3},
                               NodeId{4}, 1});
  rec.close(h, TimePoint::from_usec(400));
  rec.instant(SpanKind::kFailure, "container_kill", TimePoint::from_usec(250));

  std::ostringstream os;
  obs::write_chrome_trace(os, rec);
  const std::string json = os.str();
  // The exporter emits compact JSON (no whitespace after separators).
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":300"), std::string::npos);
  EXPECT_NE(json.find("\"container_kill\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// ---------------------------------------------------------------------------
// End-to-end determinism: identical seeded runs → byte-identical reports.
// ---------------------------------------------------------------------------

harness::ScenarioConfig small_config() {
  harness::ScenarioConfig config;
  config.strategy = recovery::StrategyConfig::canary_full();
  config.error_rate = 0.3;
  config.cluster_nodes = 8;
  config.seed = 99;
  return config;
}

TEST(ReportDeterminismTest, IdenticalSeededRunsProduceIdenticalBytes) {
  const std::vector<faas::JobSpec> jobs = {
      workloads::make_job(workloads::WorkloadKind::kWebService, 30)};
  const auto config = small_config();
  const auto agg1 = harness::run_repetitions(config, jobs, 3);
  const auto agg2 = harness::run_repetitions(config, jobs, 3);
  const auto r1 = harness::make_report("determinism", config, agg1);
  const auto r2 = harness::make_report("determinism", config, agg2);
  EXPECT_EQ(r1.to_json(), r2.to_json());
  // The report actually carries data (failures happened and were measured).
  EXPECT_GT(r1.metrics.counter("failures"), 0.0);
  EXPECT_FALSE(r1.metrics.histogram("function_latency").empty());
}

TEST(ReportDeterminismTest, DifferentSeedsProduceDifferentReports) {
  const std::vector<faas::JobSpec> jobs = {
      workloads::make_job(workloads::WorkloadKind::kWebService, 30)};
  auto config = small_config();
  const auto agg1 = harness::run_repetitions(config, jobs, 2);
  config.seed = 100;
  const auto agg2 = harness::run_repetitions(config, jobs, 2);
  const auto r1 = harness::make_report("determinism", config, agg1);
  const auto r2 = harness::make_report("determinism", config, agg2);
  EXPECT_NE(r1.to_json(), r2.to_json());
}

TEST(ReportDeterminismTest, SpanTimelineIsDeterministic) {
  const std::vector<faas::JobSpec> jobs = {
      workloads::make_job(workloads::WorkloadKind::kWebService, 20)};
  auto config = small_config();
  config.record_spans = true;
  const auto run1 = harness::ScenarioRunner::run(config, jobs);
  const auto run2 = harness::ScenarioRunner::run(config, jobs);
  ASSERT_NE(run1.spans, nullptr);
  ASSERT_NE(run2.spans, nullptr);
  EXPECT_GT(run1.spans->size(), 0u);
  std::ostringstream t1, t2;
  obs::write_chrome_trace(t1, *run1.spans);
  obs::write_chrome_trace(t2, *run2.spans);
  EXPECT_EQ(t1.str(), t2.str());
  EXPECT_EQ(run1.spans->open_count(), 0u);  // runner closes leftovers
}

}  // namespace
}  // namespace canary
