// Unit tests for the Core Module's five database tables (paper §IV-C1).
#include <gtest/gtest.h>

#include "canary/metadata.hpp"

namespace canary::core {
namespace {

TEST(MetadataWorkerTest, UpsertAndLookup) {
  MetadataStore db;
  WorkerInfoRow row;
  row.node = NodeId{3};
  row.rack = 1;
  db.upsert_worker(row);
  ASSERT_NE(db.worker(NodeId{3}), nullptr);
  EXPECT_EQ(db.worker(NodeId{3})->rack, 1u);
  EXPECT_EQ(db.worker(NodeId{9}), nullptr);

  row.alive = false;
  db.upsert_worker(row);
  EXPECT_FALSE(db.worker(NodeId{3})->alive);
  EXPECT_EQ(db.worker_count(), 1u);
}

TEST(MetadataJobTest, InsertAndMutate) {
  MetadataStore db;
  JobInfoRow row;
  row.job = JobId{1};
  row.name = "j";
  row.function_count = 4;
  db.insert_job(row);
  ASSERT_NE(db.job(JobId{1}), nullptr);
  EXPECT_EQ(db.job(JobId{1})->function_count, 4u);
  db.mutable_job(JobId{1})->replication_factor = 3;
  EXPECT_EQ(db.job(JobId{1})->replication_factor, 3u);
  EXPECT_EQ(db.job(JobId{2}), nullptr);
}

TEST(MetadataJobDeathTest, DuplicateJobAborts) {
  MetadataStore db;
  JobInfoRow row;
  row.job = JobId{1};
  db.insert_job(row);
  EXPECT_DEATH(db.insert_job(row), "duplicate job row");
}

TEST(MetadataFunctionTest, InsertLookupByJob) {
  MetadataStore db;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    FunctionInfoRow row;
    row.function = FunctionId{i};
    row.job = JobId{i == 3 ? 2u : 1u};
    db.insert_function(row);
  }
  const auto of_job1 = db.functions_of_job(JobId{1});
  ASSERT_EQ(of_job1.size(), 2u);
  EXPECT_EQ(of_job1[0]->function, FunctionId{1});
  EXPECT_EQ(of_job1[1]->function, FunctionId{2});
  db.mutable_function(FunctionId{1})->attempts = 2;
  EXPECT_EQ(db.function(FunctionId{1})->attempts, 2);
}

TEST(MetadataCheckpointTest, OrderedByStateIndex) {
  MetadataStore db;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    CheckpointInfoRow row;
    row.checkpoint = CheckpointId{i};
    row.function = FunctionId{7};
    row.state_index = 3 - i;  // insert newest-first
    db.insert_checkpoint(row);
  }
  const auto rows = db.checkpoints_of(FunctionId{7});
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows.front()->state_index, 0u);
  EXPECT_EQ(rows.back()->state_index, 2u);
  EXPECT_EQ(db.checkpoint_count(FunctionId{7}), 3u);
}

TEST(MetadataCheckpointTest, RemoveSingleAndAll) {
  MetadataStore db;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    CheckpointInfoRow row;
    row.checkpoint = CheckpointId{i};
    row.function = FunctionId{7};
    row.state_index = i;
    db.insert_checkpoint(row);
  }
  db.remove_checkpoint(CheckpointId{2});
  EXPECT_EQ(db.checkpoint_count(FunctionId{7}), 2u);
  EXPECT_EQ(db.mutable_checkpoint(CheckpointId{2}), nullptr);
  db.remove_checkpoints_of(FunctionId{7});
  EXPECT_EQ(db.checkpoint_count(FunctionId{7}), 0u);
  EXPECT_TRUE(db.checkpoints_of(FunctionId{7}).empty());
  db.remove_checkpoint(CheckpointId{99});  // unknown id is a no-op
}

TEST(MetadataReplicaTest, InsertAndQueryByImage) {
  MetadataStore db;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    ReplicationInfoRow row;
    row.replica = ReplicaId{i};
    row.runtime =
        i == 3 ? faas::RuntimeImage::kJava8 : faas::RuntimeImage::kPython3;
    row.container = ContainerId{i * 10};
    db.insert_replica(row);
  }
  EXPECT_EQ(db.replicas_of(faas::RuntimeImage::kPython3).size(), 2u);
  EXPECT_EQ(db.replicas_of(faas::RuntimeImage::kJava8).size(), 1u);
  EXPECT_TRUE(db.replicas_of(faas::RuntimeImage::kNodeJs14).empty());
}

TEST(MetadataReplicaTest, LookupByContainerSkipsDead) {
  MetadataStore db;
  ReplicationInfoRow row;
  row.replica = ReplicaId{1};
  row.container = ContainerId{5};
  db.insert_replica(row);
  ASSERT_NE(db.replica_by_container(ContainerId{5}), nullptr);
  db.mutable_replica(ReplicaId{1})->status = ReplicaStatus::kDead;
  EXPECT_EQ(db.replica_by_container(ContainerId{5}), nullptr);
  EXPECT_EQ(db.replica_by_container(ContainerId{99}), nullptr);
}

}  // namespace
}  // namespace canary::core
