// Tests for the real computational kernels behind the workloads: BFS,
// census diversity, LZ compression, and miniature DL training — including
// checkpoint/restore round-trip correctness, which is the property the
// whole paper relies on.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "workloads/kernels/census.hpp"
#include "workloads/kernels/compress.hpp"
#include "workloads/kernels/graph_bfs.hpp"
#include "workloads/kernels/mini_dl.hpp"

namespace canary::workloads::kernels {
namespace {

// ---- BFS -----------------------------------------------------------------

TEST(CsrGraphTest, BinaryTreeShape) {
  const auto g = CsrGraph::binary_tree(7);
  EXPECT_EQ(g.vertex_count(), 7u);
  EXPECT_EQ(g.edge_count(), 6u);  // complete binary tree: n-1 edges
  EXPECT_EQ(*g.neighbours_begin(0), 1u);
  EXPECT_EQ(*(g.neighbours_begin(0) + 1), 2u);
  EXPECT_EQ(g.neighbours_end(3) - g.neighbours_begin(3), 0);
}

TEST(BfsTest, TraversesWholeTree) {
  const auto g = CsrGraph::binary_tree(1023);
  BfsRunner bfs(g, 0);
  const auto processed = bfs.step(100000);
  EXPECT_EQ(processed, 1023u);
  EXPECT_TRUE(bfs.done());
  EXPECT_EQ(bfs.traversed(), 1023u);
  // Sum of 0..1022.
  EXPECT_EQ(bfs.checksum(), 1022ull * 1023 / 2);
}

TEST(BfsTest, BudgetedSteppingMatchesOneShot) {
  const auto g = CsrGraph::binary_tree(4095);
  BfsRunner one_shot(g, 0);
  one_shot.step(1u << 20);
  BfsRunner stepped(g, 0);
  while (!stepped.done()) stepped.step(100);
  EXPECT_EQ(stepped.traversed(), one_shot.traversed());
  EXPECT_EQ(stepped.checksum(), one_shot.checksum());
}

TEST(BfsTest, CheckpointRestoreResumesExactly) {
  const auto g = CsrGraph::binary_tree(100000);
  BfsRunner original(g, 0);
  original.step(30000);
  const auto ckpt = original.checkpoint();
  const std::string bytes = ckpt.serialize();
  const auto parsed = BfsCheckpoint::deserialize(bytes);
  EXPECT_EQ(parsed.traversed, 30000u);

  auto restored = BfsRunner::restore(g, parsed);
  EXPECT_EQ(restored.traversed(), original.traversed());
  EXPECT_EQ(restored.checksum(), original.checksum());

  original.step(1u << 20);
  restored.step(1u << 20);
  EXPECT_TRUE(original.done());
  EXPECT_TRUE(restored.done());
  EXPECT_EQ(restored.traversed(), original.traversed());
  EXPECT_EQ(restored.checksum(), original.checksum());
}

TEST(BfsTest, RandomGraphReachabilityIsStable) {
  const auto g = CsrGraph::random(5000, 4, /*seed=*/11);
  BfsRunner a(g, 0);
  a.step(1u << 20);
  BfsRunner b(g, 0);
  while (!b.done()) b.step(7);
  EXPECT_EQ(a.traversed(), b.traversed());
  EXPECT_EQ(a.checksum(), b.checksum());
  EXPECT_LE(a.traversed(), g.vertex_count());
}

TEST(BfsDeathTest, CorruptCheckpointRejected) {
  const auto g = CsrGraph::binary_tree(64);
  BfsRunner bfs(g, 0);
  bfs.step(10);
  auto ckpt = bfs.checkpoint();
  ckpt.frontier_sum += 1;  // corrupt the integrity checksum
  const std::string bytes = ckpt.serialize();
  EXPECT_DEATH((void)BfsCheckpoint::deserialize(bytes),
               "corrupted BFS checkpoint");
}

// Property sweep: checkpoint at various cut points always resumes to the
// same final state.
class BfsCutTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BfsCutTest, AnyCutPointResumesCorrectly) {
  const auto g = CsrGraph::binary_tree(20000);
  BfsRunner reference(g, 0);
  reference.step(1u << 20);

  BfsRunner partial(g, 0);
  partial.step(GetParam());
  auto resumed = BfsRunner::restore(g, partial.checkpoint());
  resumed.step(1u << 20);
  EXPECT_EQ(resumed.traversed(), reference.traversed());
  EXPECT_EQ(resumed.checksum(), reference.checksum());
}

INSTANTIATE_TEST_SUITE_P(CutPoints, BfsCutTest,
                         ::testing::Values(0, 1, 2, 100, 4095, 19999));

// ---- census -------------------------------------------------------------

TEST(CensusTest, SimpsonIndexBounds) {
  std::array<std::uint64_t, kEthnicityGroups> uniform{};
  uniform.fill(100);
  // Uniform across 6 groups: 1 - 6*(1/6)^2 = 5/6.
  EXPECT_NEAR(simpson_index(uniform), 5.0 / 6.0, 1e-12);

  std::array<std::uint64_t, kEthnicityGroups> single{};
  single[2] = 500;
  EXPECT_DOUBLE_EQ(simpson_index(single), 0.0);

  std::array<std::uint64_t, kEthnicityGroups> empty{};
  EXPECT_DOUBLE_EQ(simpson_index(empty), 0.0);
}

TEST(CensusTest, SynthesisIsDeterministic) {
  const auto a = synthesize_census(100, 5);
  const auto b = synthesize_census(100, 5);
  ASSERT_EQ(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].group_population, b[i].group_population);
  }
}

TEST(CensusTest, AggregatorMatchesDirectComputation) {
  const auto records = synthesize_census(500, 7);
  DiversityAggregator agg;
  for (const auto& rec : records) agg.absorb(rec);
  EXPECT_EQ(agg.counties_processed(), 500u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_DOUBLE_EQ(agg.county_indices()[i],
                     simpson_index(records[i].group_population));
  }
  EXPECT_GT(agg.national_index(), 0.0);
  EXPECT_LT(agg.national_index(), 1.0);
  EXPECT_GT(agg.total_population(), 0u);
}

TEST(CensusTest, SerializeRoundTrip) {
  const auto records = synthesize_census(64, 3);
  DiversityAggregator agg;
  for (const auto& rec : records) agg.absorb(rec);
  const auto restored = DiversityAggregator::deserialize(agg.serialize());
  EXPECT_EQ(restored.counties_processed(), agg.counties_processed());
  EXPECT_DOUBLE_EQ(restored.national_index(), agg.national_index());
  EXPECT_EQ(restored.total_population(), agg.total_population());
}

TEST(CensusTest, MergeAfterRestoreEqualsUninterrupted) {
  // The Spark workload's checkpoint property: absorb half, checkpoint,
  // "fail", restore, absorb the rest => identical result.
  const auto records = synthesize_census(200, 9);
  DiversityAggregator uninterrupted;
  for (const auto& rec : records) uninterrupted.absorb(rec);

  DiversityAggregator first_half;
  for (std::size_t i = 0; i < 100; ++i) first_half.absorb(records[i]);
  auto resumed = DiversityAggregator::deserialize(first_half.serialize());
  for (std::size_t i = 100; i < 200; ++i) resumed.absorb(records[i]);

  EXPECT_DOUBLE_EQ(resumed.national_index(), uninterrupted.national_index());
  EXPECT_EQ(resumed.counties_processed(), uninterrupted.counties_processed());
}

class CensusThreadTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CensusThreadTest, ParallelMatchesSequential) {
  const auto records = synthesize_census(1000, 13);
  const auto sequential = diversity_index(records, 1);
  const auto parallel = diversity_index(records, GetParam());
  EXPECT_DOUBLE_EQ(parallel.national_index, sequential.national_index);
  EXPECT_EQ(parallel.total_population, sequential.total_population);
  ASSERT_EQ(parallel.county_index.size(), sequential.county_index.size());
  for (std::size_t i = 0; i < sequential.county_index.size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel.county_index[i], sequential.county_index[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, CensusThreadTest,
                         ::testing::Values(2, 4, 8));

// ---- compression ------------------------------------------------------------

TEST(CompressTest, RoundTripCompressible) {
  const auto data = make_compressible_data(100000, 1);
  const auto compressed = lz_compress(data);
  EXPECT_LT(compressed.size(), data.size());  // actually compresses
  const auto restored = lz_decompress(compressed);
  EXPECT_EQ(restored, data);
}

TEST(CompressTest, RoundTripEmptyAndTiny) {
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(lz_decompress(lz_compress(empty)), empty);
  const std::vector<std::uint8_t> one = {42};
  EXPECT_EQ(lz_decompress(lz_compress(one)), one);
}

TEST(CompressTest, RoundTripIncompressibleRandom) {
  std::vector<std::uint8_t> noise(5000);
  Rng rng(99);
  for (auto& b : noise) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const auto restored = lz_decompress(lz_compress(noise));
  EXPECT_EQ(restored, noise);
}

TEST(CompressTest, LongRunsUseOverlappingReferences) {
  const std::vector<std::uint8_t> run(10000, 'a');
  const auto compressed = lz_compress(run);
  EXPECT_LT(compressed.size(), 2000u);
  EXPECT_EQ(lz_decompress(compressed), run);
}

TEST(ChunkedCompressorTest, ProcessesAllChunks) {
  const auto data = make_compressible_data(200000, 2);
  ChunkedCompressor c(64 * 1024);
  int chunks = 0;
  while (c.compress_next_chunk(data)) ++chunks;
  EXPECT_EQ(chunks, 4);  // ceil(200000 / 65536)
  EXPECT_EQ(c.bytes_in(), data.size());
  EXPECT_TRUE(c.finished(data));
}

TEST(ChunkedCompressorTest, CheckpointRestoreProducesIdenticalOutput) {
  const auto data = make_compressible_data(300000, 3);
  ChunkedCompressor uninterrupted;
  while (uninterrupted.compress_next_chunk(data)) {
  }

  ChunkedCompressor first;
  ASSERT_TRUE(first.compress_next_chunk(data));
  ASSERT_TRUE(first.compress_next_chunk(data));
  auto resumed = ChunkedCompressor::restore(first.checkpoint());
  EXPECT_EQ(resumed.chunks_done(), 2u);
  while (resumed.compress_next_chunk(data)) {
  }
  EXPECT_EQ(resumed.output(), uninterrupted.output());
  EXPECT_EQ(resumed.bytes_out(), uninterrupted.bytes_out());
}

class CompressPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(CompressPropertyTest, RoundTripAcrossSizesAndSeeds) {
  const auto [size, seed] = GetParam();
  const auto data = make_compressible_data(size, seed);
  EXPECT_EQ(lz_decompress(lz_compress(data)), data);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, CompressPropertyTest,
    ::testing::Combine(::testing::Values(1, 17, 255, 4096, 65537),
                       ::testing::Values(1, 7, 1234)));

// ---- mini DL -----------------------------------------------------------------

TEST(MiniDlTest, TrainingReducesLoss) {
  const auto data = Dataset::synthesize(512, 16, 4, 5);
  MiniMlp model(16, 32, 4, 7);
  const double first = model.train_epoch(data, 0.1);
  double last = first;
  for (int epoch = 0; epoch < 20; ++epoch) last = model.train_epoch(data, 0.1);
  EXPECT_LT(last, first * 0.7);
  EXPECT_GT(model.accuracy(data), 0.8);
}

TEST(MiniDlTest, DataParallelEpochIsThreadCountInvariant) {
  const auto data = Dataset::synthesize(256, 16, 4, 5);
  MiniMlp seq(16, 32, 4, 7);
  MiniMlp par(16, 32, 4, 7);
  for (int epoch = 0; epoch < 3; ++epoch) {
    const double a = seq.train_epoch(data, 0.1, 1);
    const double b = par.train_epoch(data, 0.1, 4);
    EXPECT_NEAR(a, b, 1e-9);
  }
  EXPECT_EQ(seq.serialize(), par.serialize());
}

TEST(MiniDlTest, CheckpointRestoreContinuesBitIdentically) {
  // The paper's DL checkpoint property: weights after resume-from-epoch-k
  // equal weights of uninterrupted training.
  const auto data = Dataset::synthesize(256, 16, 4, 21);
  MiniMlp uninterrupted(16, 32, 4, 3);
  for (int epoch = 0; epoch < 10; ++epoch) uninterrupted.train_epoch(data, 0.05);

  MiniMlp first_phase(16, 32, 4, 3);
  for (int epoch = 0; epoch < 5; ++epoch) first_phase.train_epoch(data, 0.05);
  auto resumed = MiniMlp::deserialize(first_phase.serialize());
  for (int epoch = 0; epoch < 5; ++epoch) resumed.train_epoch(data, 0.05);

  EXPECT_EQ(resumed.serialize(), uninterrupted.serialize());
}

TEST(MiniDlTest, SerializeRoundTripPreservesPredictions) {
  const auto data = Dataset::synthesize(64, 8, 3, 2);
  MiniMlp model(8, 16, 3, 4);
  model.train_epoch(data, 0.1);
  const auto restored = MiniMlp::deserialize(model.serialize());
  EXPECT_EQ(restored.parameter_count(), model.parameter_count());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(restored.predict(data.features.data() + i * 8),
              model.predict(data.features.data() + i * 8));
  }
}

TEST(MiniDlTest, DatasetSynthesisShape) {
  const auto data = Dataset::synthesize(100, 12, 5, 1);
  EXPECT_EQ(data.size(), 100u);
  EXPECT_EQ(data.features.size(), 1200u);
  for (const auto label : data.labels) EXPECT_LT(label, 5);
}

TEST(MiniDlDeathTest, DimensionMismatchAborts) {
  const auto data = Dataset::synthesize(10, 8, 2, 1);
  MiniMlp model(16, 8, 2, 1);
  EXPECT_DEATH(model.train_epoch(data, 0.1), "dimension mismatch");
}

}  // namespace
}  // namespace canary::workloads::kernels
