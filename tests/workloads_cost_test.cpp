// Tests for the workload model builders and the dollar-cost model.
#include <gtest/gtest.h>

#include "cost/cost_model.hpp"
#include "workloads/workloads.hpp"

namespace canary {
namespace {

using workloads::WorkloadKind;

TEST(WorkloadSpecTest, DlTrainingShape) {
  const auto fn = workloads::dl_training_function();
  EXPECT_EQ(fn.runtime, faas::RuntimeImage::kDlTrain);
  EXPECT_EQ(fn.states.size(), 10u);
  // ResNet50 weights exceed the 4 MiB KV entry limit: spill path.
  EXPECT_GT(fn.states.front().checkpoint_payload, Bytes::mib(4));
  EXPECT_GT(fn.finalize, Duration::zero());
  EXPECT_EQ(fn.effective_memory().count(), Bytes::gib(4).count());
}

TEST(WorkloadSpecTest, WebServiceShape) {
  const auto fn = workloads::web_service_function();
  EXPECT_EQ(fn.states.size(), 50u);  // 50 requests
  EXPECT_EQ(fn.runtime, faas::RuntimeImage::kDbQuery);
  EXPECT_LT(fn.states.front().checkpoint_payload, Bytes::mib(1));
}

TEST(WorkloadSpecTest, GraphBfsShape) {
  const auto fn = workloads::graph_bfs_function();
  EXPECT_EQ(fn.states.size(), 50u);  // 50M vertices, ckpt per 1M
  EXPECT_EQ(fn.runtime, faas::RuntimeImage::kGraphBfsPy);
}

TEST(WorkloadSpecTest, CompressionAndSparkShapes) {
  EXPECT_EQ(workloads::compression_function().states.size(), 5u);
  EXPECT_EQ(workloads::spark_mining_function().states.size(), 16u);
  EXPECT_EQ(workloads::spark_mining_function().runtime,
            faas::RuntimeImage::kSparkDiversity);
}

TEST(WorkloadSpecTest, RuntimeProbeUsesRequestedImage) {
  const auto fn =
      workloads::runtime_probe_function(faas::RuntimeImage::kJava8, 4);
  EXPECT_EQ(fn.runtime, faas::RuntimeImage::kJava8);
  EXPECT_EQ(fn.states.size(), 4u);
  EXPECT_NE(fn.name.find("java8"), std::string::npos);
}

TEST(WorkloadJobTest, MakeJobNamesFunctions) {
  const auto job = workloads::make_job(WorkloadKind::kWebService, 5);
  EXPECT_EQ(job.functions.size(), 5u);
  EXPECT_EQ(job.name, "web-service");
  EXPECT_NE(job.functions[3].name.find("-3"), std::string::npos);
}

TEST(WorkloadJobTest, MixedBatchRoundRobinsKinds) {
  const auto job = workloads::make_mixed_batch(10);
  ASSERT_EQ(job.functions.size(), 10u);
  EXPECT_EQ(job.functions[0].runtime, faas::RuntimeImage::kDlTrain);
  EXPECT_EQ(job.functions[1].runtime, faas::RuntimeImage::kDbQuery);
  EXPECT_EQ(job.functions[5].runtime, faas::RuntimeImage::kDlTrain);
}

TEST(WorkloadJobTest, KindNames) {
  EXPECT_EQ(workloads::to_string_view(WorkloadKind::kDlTraining),
            "dl-training");
  EXPECT_EQ(workloads::to_string_view(WorkloadKind::kGraphBfs), "graph-bfs");
}

TEST(WorkloadSpecTest, ScaledMultipliesDurationsAndPayloads) {
  const auto base = workloads::web_service_function(10);
  const auto large = workloads::scaled(base, 10.0);
  ASSERT_EQ(large.states.size(), base.states.size());
  EXPECT_EQ(large.states[0].duration, base.states[0].duration * 10.0);
  EXPECT_EQ(large.states[0].checkpoint_payload.count(),
            base.states[0].checkpoint_payload.count() * 10);
  EXPECT_EQ(large.finalize, base.finalize * 10.0);
  // A "test"-size scale-down shrinks rather than grows.
  const auto tiny = workloads::scaled(base, 0.1);
  EXPECT_LT(tiny.total_state_work(), base.total_state_work());
}

TEST(WorkloadSpecDeathTest, ScaledRejectsNonPositiveFactor) {
  EXPECT_DEATH((void)workloads::scaled(workloads::web_service_function(), 0.0),
               "scale factor must be positive");
}

TEST(WorkloadSpecTest, TotalStateWork) {
  faas::FunctionSpec fn;
  fn.states.push_back({Duration::sec(1.0), {}});
  fn.states.push_back({Duration::sec(2.0), {}});
  EXPECT_EQ(fn.total_state_work(), Duration::sec(3.0));
}

// ---- cost model ------------------------------------------------------------

faas::Container container_with(ContainerId id, Bytes memory,
                               faas::ContainerPurpose purpose,
                               TimePoint created) {
  faas::Container c;
  c.id = id;
  c.node = NodeId{1};
  c.image = faas::RuntimeImage::kPython3;
  c.memory = memory;
  c.purpose = purpose;
  c.created = created;
  return c;
}

TEST(CostModelTest, SingleContainerCost) {
  faas::UsageLedger ledger;
  ledger.open(container_with(ContainerId{1}, Bytes::gib(1),
                             faas::ContainerPurpose::kFunction,
                             TimePoint::origin()));
  ledger.close(ContainerId{1}, TimePoint::origin() + Duration::sec(100.0));
  cost::CostModel model;
  // 100 s * 1 GB * $0.000017.
  EXPECT_NEAR(model.cost_usd(ledger), 0.0017, 1e-9);
}

TEST(CostModelTest, BreakdownByPurpose) {
  faas::UsageLedger ledger;
  ledger.open(container_with(ContainerId{1}, Bytes::gib(1),
                             faas::ContainerPurpose::kFunction,
                             TimePoint::origin()));
  ledger.open(container_with(ContainerId{2}, Bytes::gib(2),
                             faas::ContainerPurpose::kRuntimeReplica,
                             TimePoint::origin()));
  ledger.open(container_with(ContainerId{3}, Bytes::gib(1),
                             faas::ContainerPurpose::kStandby,
                             TimePoint::origin()));
  const TimePoint end = TimePoint::origin() + Duration::sec(10.0);
  ledger.close_all_open(end);
  cost::CostModel model;
  const auto breakdown = model.breakdown(ledger);
  EXPECT_NEAR(breakdown.function_usd, 10 * 1 * 0.000017, 1e-12);
  EXPECT_NEAR(breakdown.replica_usd, 10 * 2 * 0.000017, 1e-12);
  EXPECT_NEAR(breakdown.standby_usd, 10 * 1 * 0.000017, 1e-12);
  EXPECT_NEAR(breakdown.rr_usd, 0.0, 1e-12);
  EXPECT_NEAR(breakdown.total_usd, model.cost_usd(ledger), 1e-12);
}

TEST(CostModelTest, OpenIntervalsExcludedUntilClosed) {
  faas::UsageLedger ledger;
  ledger.open(container_with(ContainerId{1}, Bytes::gib(1),
                             faas::ContainerPurpose::kFunction,
                             TimePoint::origin()));
  cost::CostModel model;
  EXPECT_EQ(model.cost_usd(ledger), 0.0);
  ledger.close_all_open(TimePoint::origin() + Duration::sec(1.0));
  EXPECT_GT(model.cost_usd(ledger), 0.0);
}

TEST(CostModelTest, ReopenedContainerClosesNewestInterval) {
  faas::UsageLedger ledger;
  auto c = container_with(ContainerId{1}, Bytes::gib(1),
                          faas::ContainerPurpose::kFunction,
                          TimePoint::origin());
  ledger.open(c);
  ledger.close(ContainerId{1}, TimePoint::origin() + Duration::sec(5.0));
  c.created = TimePoint::origin() + Duration::sec(10.0);
  ledger.open(c);
  ledger.close(ContainerId{1}, TimePoint::origin() + Duration::sec(12.0));
  EXPECT_EQ(ledger.records().size(), 2u);
  EXPECT_NEAR(ledger.total_gb_seconds(), 7.0, 1e-9);
}

TEST(CostModelTest, PricingPresets) {
  EXPECT_DOUBLE_EQ(cost::PricingModel::ibm().usd_per_gb_second, 0.000017);
  EXPECT_DOUBLE_EQ(cost::PricingModel::aws_lambda().usd_per_gb_second,
                   0.0000167);
}

}  // namespace
}  // namespace canary
